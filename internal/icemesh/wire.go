// Package icemesh distributes fleet execution across worker nodes: a
// coordinator shards a job's cells into contiguous ranges, ships each
// range to a node daemon over a small binary RPC protocol, and merges
// the per-cell results back by global index. Because a cell's result is
// a pure function of (scenario, params, index) — the fleet's determinism
// contract — the merged ensemble is byte-identical to a local run at any
// node count, which is what lets the serving layer treat the cluster as
// one big worker pool.
//
// The RPC frames reuse internal/icewire's primitives (minimal-form
// varints, length-prefixed fields, fixed 8-byte floats, strict bools),
// so the mesh protocol inherits the envelope codec's canonical-form and
// never-panic guarantees; golden vectors and a decode fuzz target hold
// it to the same bar.
package icemesh

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/icewire"
	"repro/internal/sim"
)

// MeshV1 is the protocol version byte every payload starts with;
// unknown versions are rejected outright.
const MeshV1 = 0x01

// MaxFrame bounds one RPC payload. Frames carry control metadata and one
// cell's metric map at most, so a megabyte is generous; anything larger
// is a corrupt or hostile stream and kills the connection.
const MaxFrame = 1 << 20

// Message type codes (payload offset 1).
const (
	codeHello     = 1 // node -> coordinator: register
	codeWelcome   = 2 // coordinator -> node: registration accepted
	codeHeartbeat = 3 // node -> coordinator: liveness + load
	codeAssign    = 4 // coordinator -> node: execute one cell range
	codeCellDone  = 5 // node -> coordinator: one cell's result
	codeShardDone = 6 // node -> coordinator: range finished
	codeDrain     = 7 // either direction: stop assigning, finish in-flight
	codeCellBatch = 8 // node -> coordinator: several cells' results in one frame
	codeSpanBatch = 9 // node -> coordinator: completed trace spans for a traced job
)

// Hello registers a node with the coordinator: its advertised name and
// cell-execution capacity (the width of its local worker pool).
type Hello struct {
	Node     string
	Capacity int
}

// Welcome acknowledges registration. Node echoes the (possibly renamed)
// node name the coordinator registered; HeartbeatMS is the interval the
// node must beat at — miss a few and the coordinator re-assigns.
type Welcome struct {
	Node        string
	HeartbeatMS uint64
}

// Heartbeat is the node's periodic liveness report.
type Heartbeat struct {
	Inflight  int    // shards assigned but not yet ShardDone
	CellsDone uint64 // cumulative cells executed since Hello
}

// Assign ships one contiguous cell range [Start, End) of a registry
// scenario to a node. Cells is the full ensemble size — the node
// rebuilds the identical spec via fleet.Build{Seed, Cells, Duration,
// WireCodec, Knobs} and runs only its range.
type Assign struct {
	Shard    uint64 // coordinator-global shard ID, echoed in results
	Scenario string
	Seed     int64
	Cells    int
	Start    int
	End      int
	Duration sim.Time
	Codec    string // fleet.Params.WireCodec: "" = binary
	Knobs    map[string]float64

	// Trace asks the node to forward its spans for this job's work back
	// to the coordinator in SpanBatch frames. Like the serving layer's
	// trace flag it never affects results — only whether telemetry rides
	// the wire alongside them.
	Trace bool
}

// CellDone reports one executed cell: its global index, the lifted
// engine counters, and the clinical metric map (canonical sorted keys).
type CellDone struct {
	Shard        uint64
	Index        int
	Seed         int64
	Events       uint64
	WireBytes    uint64
	WireEncodeNS uint64
	Err          string
	Metrics      map[string]float64
}

// CellBatch carries several cell results in one frame. With streaming
// fine-grained shards the per-cell CellDone frame (header + syscall per
// cell) would dominate the wire, so nodes coalesce deliveries — size-
// and time-bounded — into one batch per flush. Entries may mix shards;
// order within a batch is completion order, and every entry is decoded
// with exactly the CellDone field rules. An empty batch carries no
// information and is rejected on both ends, so every accepted frame has
// one canonical encoding.
type CellBatch struct {
	Cells []CellDone
}

// SpanAttr is one key/value annotation on a forwarded span; IsStr
// selects which payload field is meaningful, mirroring icescope.Attr.
type SpanAttr struct {
	Key   string
	Str   string
	Num   float64
	IsStr bool
}

// SpanRec is one completed span as it rides a SpanBatch: offsets are
// nanoseconds on the *sending node's* trace clock (monotonic from its
// trace epoch). The coordinator re-bases them onto the job trace using
// the batch's NowNS, so nodes and coordinator need no clock agreement.
// EndNS >= StartNS is enforced on both ends.
type SpanRec struct {
	Name    string
	StartNS uint64
	EndNS   uint64
	Attrs   []SpanAttr
}

// SpanBatch carries completed node-side spans (dial, session, shard,
// per-cell) to the coordinator for a traced job. Like CellBatch it is
// size- and time-bounded on the sending side; Shard names any of the
// job's still-active assignments (it locates the job, not the spans —
// a node's session spans cover cells from many shards), and NowNS is
// the node's trace clock at flush time, the re-basing anchor. An empty
// batch is rejected on both ends.
type SpanBatch struct {
	Shard uint64
	NowNS uint64
	Spans []SpanRec
}

// ShardDone closes one assignment; Err is the range-level failure (every
// cell-level error already rode its CellDone).
type ShardDone struct {
	Shard uint64
	Err   string
}

// Drain asks the peer to stop starting new work. Coordinator -> node: no
// further Assigns will be accepted; node -> coordinator: assign nothing
// more to me, my in-flight shards will still complete (the node-side
// graceful-shutdown handshake).
type Drain struct {
	Reason string
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v)<<1^uint64(v>>63))
}

func readZigzag(r *icewire.Reader) (int64, error) {
	u, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// readCount reads a uvarint that must fit a non-negative int and leaves
// headroom against hostile counts (each counted element is at least min
// bytes, so a count the remaining payload cannot hold is rejected before
// any allocation).
func readCount(r *icewire.Reader, min int) (int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(math.MaxInt32) || (min > 0 && n > uint64(r.Rest()/min)) {
		return 0, fmt.Errorf("icemesh: count %d exceeds remaining payload", n)
	}
	return int(n), nil
}

// appendMap encodes a string->float64 map with strictly ascending keys —
// one canonical encoding per value, exactly as icewire commands encode
// their args.
func appendMap(dst []byte, m map[string]float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = icewire.AppendString(dst, k)
		dst = icewire.AppendFloat(dst, m[k])
	}
	return dst
}

func readMap(r *icewire.Reader) (map[string]float64, error) {
	n, err := readCount(r, 9) // key length byte + fixed 8-byte value
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	m := make(map[string]float64, n)
	prev := ""
	for i := 0; i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		if i > 0 && k <= prev {
			return nil, fmt.Errorf("icemesh: map keys out of canonical order (%q after %q)", k, prev)
		}
		prev = k
		v, err := r.Float()
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// AppendMessage encodes one RPC payload (version byte, type code,
// fields) into dst. Unknown message types error.
func AppendMessage(dst []byte, m any) ([]byte, error) {
	switch v := m.(type) {
	case *Hello:
		if v.Capacity < 0 {
			return dst, fmt.Errorf("icemesh: negative capacity %d", v.Capacity)
		}
		dst = append(dst, MeshV1, codeHello)
		dst = icewire.AppendString(dst, v.Node)
		return binary.AppendUvarint(dst, uint64(v.Capacity)), nil
	case *Welcome:
		dst = append(dst, MeshV1, codeWelcome)
		dst = icewire.AppendString(dst, v.Node)
		return binary.AppendUvarint(dst, v.HeartbeatMS), nil
	case *Heartbeat:
		if v.Inflight < 0 {
			return dst, fmt.Errorf("icemesh: negative inflight %d", v.Inflight)
		}
		dst = append(dst, MeshV1, codeHeartbeat)
		dst = binary.AppendUvarint(dst, uint64(v.Inflight))
		return binary.AppendUvarint(dst, v.CellsDone), nil
	case *Assign:
		if v.Cells < 0 || v.Start < 0 || v.End < v.Start || v.End > v.Cells {
			return dst, fmt.Errorf("icemesh: bad range [%d,%d) of %d cells", v.Start, v.End, v.Cells)
		}
		dst = append(dst, MeshV1, codeAssign)
		dst = binary.AppendUvarint(dst, v.Shard)
		dst = icewire.AppendString(dst, v.Scenario)
		dst = appendZigzag(dst, v.Seed)
		dst = binary.AppendUvarint(dst, uint64(v.Cells))
		dst = binary.AppendUvarint(dst, uint64(v.Start))
		dst = binary.AppendUvarint(dst, uint64(v.End))
		dst = appendZigzag(dst, int64(v.Duration))
		dst = icewire.AppendString(dst, v.Codec)
		dst = appendMap(dst, v.Knobs)
		return icewire.AppendBool(dst, v.Trace), nil
	case *CellDone:
		if v.Index < 0 {
			return dst, fmt.Errorf("icemesh: negative cell index %d", v.Index)
		}
		dst = append(dst, MeshV1, codeCellDone)
		return appendCellDone(dst, v), nil
	case *CellBatch:
		if len(v.Cells) == 0 {
			return dst, errors.New("icemesh: empty cell batch")
		}
		dst = append(dst, MeshV1, codeCellBatch)
		dst = binary.AppendUvarint(dst, uint64(len(v.Cells)))
		for i := range v.Cells {
			if v.Cells[i].Index < 0 {
				return dst, fmt.Errorf("icemesh: negative cell index %d", v.Cells[i].Index)
			}
			dst = appendCellDone(dst, &v.Cells[i])
		}
		return dst, nil
	case *SpanBatch:
		if len(v.Spans) == 0 {
			return dst, errors.New("icemesh: empty span batch")
		}
		dst = append(dst, MeshV1, codeSpanBatch)
		dst = binary.AppendUvarint(dst, v.Shard)
		dst = binary.AppendUvarint(dst, v.NowNS)
		dst = binary.AppendUvarint(dst, uint64(len(v.Spans)))
		for i := range v.Spans {
			sp := &v.Spans[i]
			if sp.EndNS < sp.StartNS {
				return dst, fmt.Errorf("icemesh: span %q ends before it starts (%d < %d)", sp.Name, sp.EndNS, sp.StartNS)
			}
			dst = icewire.AppendString(dst, sp.Name)
			dst = binary.AppendUvarint(dst, sp.StartNS)
			dst = binary.AppendUvarint(dst, sp.EndNS)
			dst = binary.AppendUvarint(dst, uint64(len(sp.Attrs)))
			for _, a := range sp.Attrs {
				dst = icewire.AppendString(dst, a.Key)
				dst = icewire.AppendBool(dst, a.IsStr)
				if a.IsStr {
					dst = icewire.AppendString(dst, a.Str)
				} else {
					dst = icewire.AppendFloat(dst, a.Num)
				}
			}
		}
		return dst, nil
	case *ShardDone:
		dst = append(dst, MeshV1, codeShardDone)
		dst = binary.AppendUvarint(dst, v.Shard)
		return icewire.AppendString(dst, v.Err), nil
	case *Drain:
		dst = append(dst, MeshV1, codeDrain)
		return icewire.AppendString(dst, v.Reason), nil
	default:
		return dst, fmt.Errorf("icemesh: cannot encode message type %T", m)
	}
}

// appendCellDone encodes one cell result's fields — the shared body of
// CellDone frames and CellBatch entries, so the two can never drift.
func appendCellDone(dst []byte, v *CellDone) []byte {
	dst = binary.AppendUvarint(dst, v.Shard)
	dst = binary.AppendUvarint(dst, uint64(v.Index))
	dst = appendZigzag(dst, v.Seed)
	dst = binary.AppendUvarint(dst, v.Events)
	dst = binary.AppendUvarint(dst, v.WireBytes)
	dst = binary.AppendUvarint(dst, v.WireEncodeNS)
	dst = icewire.AppendString(dst, v.Err)
	return appendMap(dst, v.Metrics)
}

// DecodeMessage parses one RPC payload, returning a pointer to the typed
// message. It never panics on arbitrary bytes, rejects unknown versions
// and type codes, non-minimal varints, non-canonical map orderings, and
// trailing garbage — every accepted payload has exactly one encoding.
func DecodeMessage(data []byte) (any, error) {
	if len(data) < 2 {
		return nil, errors.New("icemesh: truncated payload")
	}
	if data[0] != MeshV1 {
		return nil, fmt.Errorf("icemesh: unsupported protocol version 0x%02x", data[0])
	}
	r := icewire.NewReader(data[2:])
	var m any
	var err error
	switch data[1] {
	case codeHello:
		v := &Hello{}
		if v.Node, err = r.String(); err == nil {
			var cap64 int
			if cap64, err = readCount(r, 0); err == nil {
				v.Capacity = cap64
			}
		}
		m = v
	case codeWelcome:
		v := &Welcome{}
		if v.Node, err = r.String(); err == nil {
			v.HeartbeatMS, err = r.Uvarint()
		}
		m = v
	case codeHeartbeat:
		v := &Heartbeat{}
		if v.Inflight, err = readCount(r, 0); err == nil {
			v.CellsDone, err = r.Uvarint()
		}
		m = v
	case codeAssign:
		v := &Assign{}
		err = decodeAssign(r, v)
		m = v
	case codeCellDone:
		v := &CellDone{}
		err = decodeCellDone(r, v)
		m = v
	case codeCellBatch:
		v := &CellBatch{}
		// Each entry is at least 8 bytes (six 1-byte varints plus two
		// 1-byte lengths), so hostile counts are rejected pre-allocation.
		var n int
		if n, err = readCount(r, 8); err == nil {
			if n == 0 {
				err = errors.New("icemesh: empty cell batch")
			} else {
				v.Cells = make([]CellDone, n)
				for i := 0; i < n && err == nil; i++ {
					err = decodeCellDone(r, &v.Cells[i])
				}
			}
		}
		m = v
	case codeSpanBatch:
		v := &SpanBatch{}
		err = decodeSpanBatch(r, v)
		m = v
	case codeShardDone:
		v := &ShardDone{}
		if v.Shard, err = r.Uvarint(); err == nil {
			v.Err, err = r.String()
		}
		m = v
	case codeDrain:
		v := &Drain{}
		v.Reason, err = r.String()
		m = v
	default:
		return nil, fmt.Errorf("icemesh: unknown message type code 0x%02x", data[1])
	}
	if err != nil {
		return nil, err
	}
	if r.Rest() != 0 {
		return nil, fmt.Errorf("icemesh: %d trailing bytes after message", r.Rest())
	}
	return m, nil
}

func decodeAssign(r *icewire.Reader, v *Assign) error {
	var err error
	if v.Shard, err = r.Uvarint(); err != nil {
		return err
	}
	if v.Scenario, err = r.String(); err != nil {
		return err
	}
	if v.Seed, err = readZigzag(r); err != nil {
		return err
	}
	if v.Cells, err = readCount(r, 0); err != nil {
		return err
	}
	if v.Start, err = readCount(r, 0); err != nil {
		return err
	}
	if v.End, err = readCount(r, 0); err != nil {
		return err
	}
	if v.Start > v.End || v.End > v.Cells {
		return fmt.Errorf("icemesh: bad range [%d,%d) of %d cells", v.Start, v.End, v.Cells)
	}
	var d int64
	if d, err = readZigzag(r); err != nil {
		return err
	}
	v.Duration = sim.Time(d)
	if v.Codec, err = r.String(); err != nil {
		return err
	}
	if v.Knobs, err = readMap(r); err != nil {
		return err
	}
	v.Trace, err = r.Bool()
	return err
}

func decodeSpanBatch(r *icewire.Reader, v *SpanBatch) error {
	var err error
	if v.Shard, err = r.Uvarint(); err != nil {
		return err
	}
	if v.NowNS, err = r.Uvarint(); err != nil {
		return err
	}
	// Each span is at least 4 bytes (name length, two offsets, attr
	// count, one byte each), so hostile counts die pre-allocation.
	n, err := readCount(r, 4)
	if err != nil {
		return err
	}
	if n == 0 {
		return errors.New("icemesh: empty span batch")
	}
	v.Spans = make([]SpanRec, n)
	for i := range v.Spans {
		sp := &v.Spans[i]
		if sp.Name, err = r.String(); err != nil {
			return err
		}
		if sp.StartNS, err = r.Uvarint(); err != nil {
			return err
		}
		if sp.EndNS, err = r.Uvarint(); err != nil {
			return err
		}
		if sp.EndNS < sp.StartNS {
			return fmt.Errorf("icemesh: span %q ends before it starts (%d < %d)", sp.Name, sp.EndNS, sp.StartNS)
		}
		// Each attr is at least 3 bytes: key length, the IsStr bool, and
		// one payload byte.
		na, err := readCount(r, 3)
		if err != nil {
			return err
		}
		if na == 0 {
			continue
		}
		sp.Attrs = make([]SpanAttr, na)
		for j := range sp.Attrs {
			a := &sp.Attrs[j]
			if a.Key, err = r.String(); err != nil {
				return err
			}
			if a.IsStr, err = r.Bool(); err != nil {
				return err
			}
			if a.IsStr {
				a.Str, err = r.String()
			} else {
				a.Num, err = r.Float()
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeCellDone(r *icewire.Reader, v *CellDone) error {
	var err error
	if v.Shard, err = r.Uvarint(); err != nil {
		return err
	}
	if v.Index, err = readCount(r, 0); err != nil {
		return err
	}
	if v.Seed, err = readZigzag(r); err != nil {
		return err
	}
	if v.Events, err = r.Uvarint(); err != nil {
		return err
	}
	if v.WireBytes, err = r.Uvarint(); err != nil {
		return err
	}
	if v.WireEncodeNS, err = r.Uvarint(); err != nil {
		return err
	}
	if v.Err, err = r.String(); err != nil {
		return err
	}
	v.Metrics, err = readMap(r)
	return err
}

// WriteMessage frames one message onto w: uvarint payload length, then
// the payload. buf is the caller's reusable scratch; the (possibly
// grown) buffer is returned for the next call, so a steady-state
// connection re-frames without allocating.
func WriteMessage(w io.Writer, buf []byte, m any) ([]byte, error) {
	payload, err := AppendMessage(buf[:0], m)
	if err != nil {
		return buf, err
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return payload, err
	}
	_, err = w.Write(payload)
	return payload, err
}

// ReadMessage reads one length-prefixed message from r. Payloads larger
// than MaxFrame are rejected before allocation — a corrupt length cannot
// balloon memory.
func ReadMessage(r *bufio.Reader) (any, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("icemesh: %d-byte frame exceeds the %d-byte ceiling", size, MaxFrame)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return DecodeMessage(payload)
}
