package icemesh

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Delay grows exponentially from Base, never exceeds Max, and jitters
// within [d/2, d] — the full-jitter contract that keeps re-dialing
// clients from stampeding.
func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second}
	for attempt := 0; attempt < 10; attempt++ {
		want := min(100*time.Millisecond<<attempt, time.Second)
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// The zero value defaults sanely.
	if d := (Backoff{}).Delay(0); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("zero-value delay %v outside [50ms, 100ms]", d)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, Backoff{Base: time.Microsecond, Max: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(context.Background(), 4, Backoff{Base: time.Microsecond, Max: time.Microsecond}, func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err = %v after %d calls, want boom after 4", err, calls)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := Retry(ctx, 0 /* unlimited */, Backoff{Base: time.Hour, Max: time.Hour}, func() error {
		cancel() // fail once, then the backoff wait must be cut short
		return boom
	})
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want boom joined with context.Canceled", err)
	}
}
