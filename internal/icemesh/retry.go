package icemesh

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// Backoff is the mesh's shared retry policy: exponential growth from
// Base toward Max with full jitter (each delay is drawn uniformly from
// [d/2, d]), so a fleet of clients re-dialing a restarted coordinator
// spreads out instead of stampeding. The zero value is a sane default
// (100ms doubling to a 5s ceiling). Node dialing, the icerun -remote
// client, and anything else that talks to a daemon share this one
// policy instead of growing private ones.
type Backoff struct {
	Base time.Duration // first delay; <=0 means 100ms
	Max  time.Duration // delay ceiling; <=0 means 5s
}

// Delay returns the jittered pause before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + rand.N(d/2+1)
}

// Retry runs op until it succeeds, the context is done, or attempts are
// exhausted (attempts <= 0 retries forever). The returned error is op's
// last failure, joined with the context's when the wait was cut short.
func Retry(ctx context.Context, attempts int, b Backoff, op func() error) error {
	var err error
	for i := 0; attempts <= 0 || i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if attempts > 0 && i == attempts-1 {
			break
		}
		t := time.NewTimer(b.Delay(i))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return errors.Join(err, ctx.Err())
		}
	}
	return err
}
