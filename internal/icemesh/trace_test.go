package icemesh

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/icescope"
	"repro/internal/sim"
)

// TestMeshTraceCoverage is the attribution acceptance gate: a traced
// 8-cell job on a 2-node mesh must attribute at least 90% of its wall
// time to named leaf spans (plan + per-shard round trips), so the trace
// can actually explain where the scaling headroom goes instead of
// leaving it in anonymous gaps. The rendered tree is logged — DESIGN.md
// quotes a run of this shape.
func TestMeshTraceCoverage(t *testing.T) {
	coord, _ := startMesh(t, Config{ShardCells: 2}, 2, 2)

	spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
		Seed: 42, Cells: 8, Duration: 30 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := icescope.NewTrace("mesh-job")
	root := tr.Start(icescope.Span{}, "job mesh-bench")
	runner := fleet.Runner{Workers: 2, Engine: coord, Span: root}
	if _, err := runner.Run(spec); err != nil {
		t.Fatal(err)
	}
	root.End()

	cov := tr.Coverage(root)
	t.Logf("trace coverage: %.3f\n%s", cov, tr.TextString())
	if cov < 0.9 {
		t.Fatalf("trace attributes only %.1f%% of wall time to leaf spans, want >= 90%%\n%s",
			cov*100, tr.TextString())
	}
	text := tr.TextString()
	for _, want := range []string{"engine " + fleet.ScenarioPCASupervised, "plan", "shard 1 [0,2)"} {
		if !strings.Contains(text, want) {
			t.Errorf("trace tree missing span %q:\n%s", want, text)
		}
	}
	if tr.Dropped() != 0 {
		t.Errorf("trace dropped %d spans under the default cap", tr.Dropped())
	}
}

// Tracing is observability, not identity: the same mesh job with and
// without a span root — and with a live event subscriber attached, which
// also turns on node span forwarding — reduces to byte-identical tables.
func TestMeshTraceDifferential(t *testing.T) {
	coord, _ := startMesh(t, Config{ShardCells: 3}, 2, 2)

	spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
		Seed: 7, Cells: 5, Duration: 30 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fleet.Runner{Workers: 2, Engine: coord}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	tr := icescope.NewTrace("diff")
	tr.StreamEvents(0)
	_, live, _ := tr.SubscribeEvents()
	root := tr.Start(icescope.Span{}, "job")
	traced, err := fleet.Runner{Workers: 2, Engine: coord, Span: root}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	tr.CloseEvents()
	events := 0
	for range live {
		events++
	}
	if events == 0 {
		t.Error("streamed trace published no events")
	}
	if got, want := summarize(traced), summarize(plain); got != want {
		t.Fatalf("tracing changed the mesh table:\n%s\nvs\n%s", got, want)
	}
}

// TestMeshForwardsNodeSpans pins the forwarding contract end to end: a
// traced job on a 2-node mesh ends up with every node's dial, session,
// shard, and cell spans in the job trace — grouped under per-node
// umbrella spans — and a live subscriber sees node-originated span
// events before the job's root closes, which is what the events
// endpoint streams mid-job.
func TestMeshForwardsNodeSpans(t *testing.T) {
	coord, _ := startMesh(t, Config{ShardCells: 2}, 2, 2)

	spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
		Seed: 11, Cells: 8, Duration: 30 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := icescope.NewTrace("mesh-fwd")
	tr.StreamEvents(0)
	_, live, _ := tr.SubscribeEvents()
	root := tr.Start(icescope.Span{}, "job")
	if _, err := (fleet.Runner{Workers: 2, Engine: coord, Span: root}).Run(spec); err != nil {
		t.Fatal(err)
	}
	// Snapshot before root.End(): anything seen now arrived mid-job.
	var preTerminal int
drain:
	for {
		select {
		case ev := <-live:
			if ev.Name == "cell run" || strings.HasPrefix(ev.Name, "dial coordinator") {
				preTerminal++
			}
		default:
			break drain
		}
	}
	root.End()
	tr.CloseEvents()
	if preTerminal == 0 {
		t.Error("no node-originated span events reached the live stream before the job closed")
	}

	text := tr.TextString()
	t.Logf("forwarded trace:\n%s", text)
	for _, want := range []string{"dial coordinator", "session worker-", "shard", "cell run"} {
		if !strings.Contains(text, want) {
			t.Errorf("job trace missing forwarded span %q", want)
		}
	}
	// Both nodes must have contributed an umbrella: work on 8 cells at
	// shard grain 2 across a 2-node window always lands on both.
	for _, node := range []string{"node worker-a", "node worker-b"} {
		if !strings.Contains(text, node) {
			t.Errorf("job trace missing umbrella %q — one node's spans never arrived", node)
		}
	}
	if coord.met.spanBatches.Value() == 0 {
		t.Error("icemesh_span_batches_total = 0 after a traced mesh job")
	}
	if coord.met.spansForwarded.Value() == 0 {
		t.Error("icemesh_spans_forwarded_total = 0 after a traced mesh job")
	}
}

// Node loss must leave the coordinator's metrics both well-formed and
// arithmetically right: one eviction, at least one shard retry, and —
// because delivery is deduplicated by job.seen — exactly one count per
// cell even though some cells were assigned twice.
func TestNodeLossMetricsStayCorrect(t *testing.T) {
	seed := 9000 + killSeeds.Add(1)
	const cells = 6
	coord, cancels := startMesh(t, Config{ShardCells: 1, Heartbeat: 50 * time.Millisecond}, 2, 1)

	spec, err := fleet.Build("mesh-gated", fleet.Params{Seed: seed, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := fleet.Runner{Workers: 4, Engine: coord}.RunContext(context.Background(), spec, nil)
		done <- err
	}()

	// Wait until both nodes hold gated work, then kill one.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		busy := 0
		for _, n := range coord.nodes {
			if len(n.inflight) > 0 {
				busy++
			}
		}
		coord.mu.Unlock()
		if busy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes never picked up shards")
		}
		time.Sleep(time.Millisecond)
	}
	cancels[0]()
	deadline = time.Now().Add(10 * time.Second)
	for coord.NodeCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("killed node never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	close(meshGate(seed))
	if err := <-done; err != nil {
		t.Fatalf("mesh run after node kill: %v", err)
	}

	if got := coord.met.nodesLost.Value(); got != 1 {
		t.Errorf("nodes_lost_total = %d, want 1", got)
	}
	if coord.met.shardRetries.Value() == 0 {
		t.Error("shard_retries_total = 0 after a mid-job node kill")
	}
	if got := coord.met.cellsDone.Value(); got != cells {
		t.Errorf("cells_done_total = %d, want %d (re-assigned cells double-counted?)", got, cells)
	}

	text := coord.MetricsText()
	if err := icescope.Lint(text); err != nil {
		t.Errorf("post-loss exposition fails lint: %v", err)
	}
	for _, want := range []string{
		"icemesh_nodes_lost_total 1\n",
		"icemesh_nodes_live 1\n",
		"# TYPE icemesh_shard_retries_total counter\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// The dead node's per-node gauges must be gone; the survivor's stay.
	if strings.Contains(text, `node="worker-a"`) {
		t.Errorf("evicted node still has per-node gauges:\n%s", text)
	}
	if !strings.Contains(text, `icemesh_node_cells_total{node="worker-b"} `+
		"6\n") {
		t.Errorf("survivor's cell gauge wrong:\n%s", text)
	}
}
