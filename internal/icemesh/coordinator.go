package icemesh

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// Config sizes the coordinator.
type Config struct {
	Heartbeat     time.Duration // node beat interval advertised in Welcome; <=0 means 1s
	NodeTimeout   time.Duration // silence before a node is presumed dead; <=0 means 4x Heartbeat
	ShardCells    int           // cells per shard; <=0 means 2 (fine-grained streaming)
	Window        int           // max in-flight shards per node; <=0 sizes from capacity (see windowLocked)
	ShardDeadline time.Duration // re-queue a shard not finished by then; <=0 means never
	MaxRetries    int           // re-assignments per shard before the job fails; <=0 means 3
	Logf          func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.NodeTimeout <= 0 {
		c.NodeTimeout = 4 * c.Heartbeat
	}
	if c.ShardCells <= 0 {
		c.ShardCells = 2
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ErrNoNodes rejects work when the mesh has no live, non-draining
// workers to run it on.
var ErrNoNodes = errors.New("icemesh: no live worker nodes")

// Coordinator owns the node registry and the shard queue: it accepts
// node registrations over the mesh wire protocol, splits each job's
// cell range into fine-grained contiguous shards, and streams them to
// nodes pull-style — every node holds at most a small credit window of
// in-flight shards, and each ShardDone (or node join) pulls the next
// shard off the global FIFO, so fast nodes automatically steal the tail
// and a slow cell can never serialize a backlog behind it. Shards lost
// to node death or deadline are re-queued at the front; delivered cells
// merge back by global index, deduplicated first-wins.
//
// Coordinator implements fleet.Engine, and (structurally) icegate's
// Backend — plugging the cluster in wherever a local worker pool was.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	nodes    map[string]*meshNode
	shards   map[uint64]*meshShard
	pending  []*meshShard // global FIFO of shards awaiting a node with credit
	shardSeq uint64
	nameSeq  int

	met meshMetrics
}

// meshMetrics is the coordinator's icescope registry plus the handles
// its serving paths update. Per-node gauges are labeled vectors synced
// from the node registry by an OnCollect hook at scrape time; a lost
// node's children are deleted so /metrics never reports ghosts.
type meshMetrics struct {
	reg *icescope.Registry

	nodesJoined    *icescope.Counter
	nodesLost      *icescope.Counter
	shardsAssigned *icescope.Counter
	shardRetries   *icescope.Counter
	cellsDone      *icescope.Counter
	cellBatches    *icescope.Counter
	jobs           *icescope.Counter
	jobsFailed     *icescope.Counter

	// Span forwarding: frames received, spans injected into job traces,
	// and frames dropped because their locator no longer mapped to a
	// live traced job (the job finished or was re-assigned — benign).
	spanBatches      *icescope.Counter
	spansForwarded   *icescope.Counter
	spanBatchesStale *icescope.Counter

	// heartbeatJitter observes |actual beat interval − configured
	// interval| per received heartbeat: the mesh's clock-health signal.
	heartbeatJitter *icescope.Histogram

	nodeCapacity *icescope.GaugeVec
	nodeInflight *icescope.GaugeVec
	nodeCells    *icescope.GaugeVec
	nodeCellsPS  *icescope.GaugeVec
}

func newMeshMetrics(c *Coordinator) meshMetrics {
	r := icescope.NewRegistry()
	m := meshMetrics{reg: r}
	r.GaugeFunc("icemesh_nodes_live", "Worker nodes currently registered.",
		func() float64 { return float64(c.NodeCount()) })
	m.nodesJoined = r.Counter("icemesh_nodes_joined_total", "Node registrations accepted.")
	m.nodesLost = r.Counter("icemesh_nodes_lost_total", "Nodes evicted (drop, timeout, close).")
	m.jobs = r.Counter("icemesh_jobs_total", "RunRange jobs accepted.")
	m.jobsFailed = r.Counter("icemesh_jobs_failed_total", "RunRange jobs that returned an error.")
	m.shardsAssigned = r.Counter("icemesh_shards_assigned_total", "Shard assignments sent (including re-assignments).")
	m.shardRetries = r.Counter("icemesh_shard_retries_total", "Shards re-queued after node loss or deadline.")
	m.cellsDone = r.Counter("icemesh_cells_done_total", "Cells delivered back and merged.")
	m.cellBatches = r.Counter("icemesh_cell_batches_total", "Batched CellDone frames received.")
	m.spanBatches = r.Counter("icemesh_span_batches_total", "SpanBatch frames received from nodes.")
	m.spansForwarded = r.Counter("icemesh_spans_forwarded_total", "Node spans injected into job traces.")
	m.spanBatchesStale = r.Counter("icemesh_span_batches_stale_total", "SpanBatch frames dropped: locator no longer a live traced job.")
	r.GaugeFunc("icemesh_queue_depth", "Shards awaiting a node with window credit.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.pending))
		})
	m.heartbeatJitter = r.Histogram("icemesh_heartbeat_jitter_seconds",
		"Absolute deviation of node heartbeat intervals from the configured beat.", nil)
	m.nodeCapacity = r.GaugeVec("icemesh_node_capacity", "Advertised worker capacity per node.", "node")
	m.nodeInflight = r.GaugeVec("icemesh_node_inflight_shards", "Shards assigned and unfinished per node.", "node")
	m.nodeCells = r.GaugeVec("icemesh_node_cells_total", "Cells delivered per node.", "node")
	m.nodeCellsPS = r.GaugeVec("icemesh_node_cells_per_second", "Per-node delivery rate since join.", "node")
	r.OnCollect(c.syncNodeGauges)
	return m
}

// syncNodeGauges refreshes the per-node vectors from the registry at
// scrape time.
func (c *Coordinator) syncNodeGauges() {
	type nodeStat struct {
		name      string
		capacity  int
		inflight  int
		cellsDone uint64
		perSec    float64
	}
	c.mu.Lock()
	stats := make([]nodeStat, 0, len(c.nodes))
	for _, n := range c.nodes {
		up := time.Since(n.joined).Seconds()
		perSec := 0.0
		if up > 0 {
			perSec = float64(n.cellsDone) / up
		}
		stats = append(stats, nodeStat{n.name, n.capacity, len(n.inflight), n.cellsDone, perSec})
	}
	c.mu.Unlock()
	for _, s := range stats {
		c.met.nodeCapacity.With(s.name).Set(float64(s.capacity))
		c.met.nodeInflight.With(s.name).Set(float64(s.inflight))
		c.met.nodeCells.With(s.name).Set(float64(s.cellsDone))
		c.met.nodeCellsPS.With(s.name).Set(s.perSec)
	}
}

// dropNodeGauges removes a departed node's labeled series.
func (c *Coordinator) dropNodeGauges(name string) {
	c.met.nodeCapacity.Delete(name)
	c.met.nodeInflight.Delete(name)
	c.met.nodeCells.Delete(name)
	c.met.nodeCellsPS.Delete(name)
}

// meshNode is one registered worker connection.
type meshNode struct {
	name     string
	capacity int
	conn     net.Conn

	wmu  sync.Mutex // serializes frame writes; wbuf is the encode scratch
	wbuf []byte

	// Guarded by Coordinator.mu.
	inflight  map[uint64]*meshShard
	draining  bool
	lastBeat  time.Time
	joined    time.Time
	cellsDone uint64 // cells this node delivered (coordinator's count)
}

// send frames one message to the node with a short write deadline: a
// peer that cannot drain a few control bytes within it is dead weight
// and gets evicted by the caller on error.
func (n *meshNode) send(m any) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	_ = n.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	buf, err := WriteMessage(n.conn, n.wbuf, m)
	n.wbuf = buf
	return err
}

// meshShard is one contiguous cell range of one job. A shard is either
// assigned (node != nil, counted in that node's window) or queued on the
// coordinator's pending FIFO (node == nil).
type meshShard struct {
	id         uint64
	job        *meshJob
	start, end int
	retries    int
	node       *meshNode   // current assignee; nil while queued
	lastNode   *meshNode   // previous assignee; re-dispatch prefers a different node
	deadline   *time.Timer // ShardDeadline re-queue, when configured
	span       icescope.Span
}

// meshJob is one RunRange call in flight.
type meshJob struct {
	scenario string
	p        fleet.Params
	deliver  func(fleet.Result)
	span     icescope.Span // engine-side parent, propagated over RunRange's ctx

	// Guarded by Coordinator.mu.
	base      int // global index of seen[0]
	seen      []bool
	pending   int // shards not yet terminally done
	finished  bool
	failed    error
	done      chan struct{}
	nodeSpans map[string]icescope.Span // per-node umbrella for forwarded spans
}

func (j *meshJob) finish(err error) {
	if j.finished {
		return
	}
	j.finished = true
	j.failed = err
	close(j.done)
}

// NewCoordinator returns a coordinator ready to Serve a listener.
func NewCoordinator(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:    cfg.withDefaults(),
		nodes:  map[string]*meshNode{},
		shards: map[uint64]*meshShard{},
	}
	c.met = newMeshMetrics(c)
	return c
}

// Serve accepts node registrations until the listener closes. Run it in
// a goroutine; it returns the accept error (net.ErrClosed after Close).
func (c *Coordinator) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go c.serveConn(conn)
	}
}

// Close evicts every node and fails every job still in flight.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	nodes := make([]*meshNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()
	for _, n := range nodes {
		c.nodeLost(n, errors.New("icemesh: coordinator closed"))
	}
}

// Name implements the serving layer's Backend: jobs dispatched here fan
// out across the mesh.
func (c *Coordinator) Name() string { return "mesh" }

// Engine implements Backend: the coordinator is its own fleet engine.
func (c *Coordinator) Engine() fleet.Engine { return c }

// NodeCount reports live registered nodes.
func (c *Coordinator) NodeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// WaitForNodes blocks until at least n nodes are registered or the
// context expires — the cluster-bringup helper scripts and tests use.
func (c *Coordinator) WaitForNodes(ctx context.Context, n int) error {
	for {
		if c.NodeCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("icemesh: %w waiting for %d nodes", ctx.Err(), n)
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// serveConn runs one node connection: Hello/Welcome handshake, then the
// event loop. The read deadline doubles as the liveness janitor — a node
// whose heartbeats stop arriving times the read out and is evicted.
func (c *Coordinator) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	first, err := ReadMessage(br)
	if err != nil {
		conn.Close()
		return
	}
	hello, ok := first.(*Hello)
	if !ok {
		conn.Close()
		return
	}

	node := &meshNode{
		name:     hello.Node,
		capacity: max(hello.Capacity, 1),
		conn:     conn,
		inflight: map[uint64]*meshShard{},
		lastBeat: time.Now(),
		joined:   time.Now(),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		conn.Close()
		return
	}
	if node.name == "" {
		c.nameSeq++
		node.name = fmt.Sprintf("node-%d", c.nameSeq)
	}
	base := node.name
	for _, taken := c.nodes[node.name]; taken; _, taken = c.nodes[node.name] {
		c.nameSeq++
		node.name = fmt.Sprintf("%s-%d", base, c.nameSeq)
	}
	c.nodes[node.name] = node
	c.mu.Unlock()
	c.met.nodesJoined.Inc()
	c.cfg.Logf("icemesh: node %s joined (capacity %d) from %s", node.name, node.capacity, conn.RemoteAddr())

	if err := node.send(&Welcome{Node: node.name, HeartbeatMS: uint64(c.cfg.Heartbeat / time.Millisecond)}); err != nil {
		c.nodeLost(node, err)
		return
	}

	// A node that joins mid-job starts pulling queued shards immediately —
	// elasticity is a property of the queue, not of a plan.
	c.mu.Lock()
	sends := c.dispatchLocked()
	c.mu.Unlock()
	c.flush(sends)

	for {
		_ = conn.SetReadDeadline(time.Now().Add(c.cfg.NodeTimeout))
		m, err := ReadMessage(br)
		if err != nil {
			c.nodeLost(node, err)
			return
		}
		switch v := m.(type) {
		case *Heartbeat:
			c.mu.Lock()
			interval := time.Since(node.lastBeat)
			node.lastBeat = time.Now()
			// Safety net: a beat also pulls work, so a dispatch
			// opportunity missed to a transient condition heals within
			// one heartbeat instead of wedging the queue.
			sends := c.dispatchLocked()
			c.mu.Unlock()
			c.flush(sends)
			c.met.heartbeatJitter.Observe(math.Abs((interval - c.cfg.Heartbeat).Seconds()))
		case *CellDone:
			c.onCellDone(node, v)
		case *CellBatch:
			c.onCellBatch(node, v)
		case *ShardDone:
			c.onShardDone(node, v)
		case *SpanBatch:
			c.onSpanBatch(node, v)
		case *Drain:
			c.cfg.Logf("icemesh: node %s draining: %s", node.name, v.Reason)
			c.mu.Lock()
			node.draining = true
			c.mu.Unlock()
		default:
			c.nodeLost(node, fmt.Errorf("icemesh: unexpected %T from node", m))
			return
		}
	}
}

// RunRange implements fleet.Engine: shard [start, end) across the live
// nodes, re-assigning on failure, and deliver every cell exactly once.
func (c *Coordinator) RunRange(ctx context.Context, scenario string, p fleet.Params, start, end int, deliver func(fleet.Result)) error {
	if end <= start {
		return nil
	}
	c.met.jobs.Inc()
	job := &meshJob{
		scenario: scenario, p: p, deliver: deliver,
		base: start, seen: make([]bool, end-start),
		done: make(chan struct{}),
		span: icescope.SpanFromContext(ctx),
	}
	plan := job.span.Child("plan")

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		plan.End(icescope.StrAttr("outcome", "closed"))
		return errors.New("icemesh: coordinator closed")
	}
	live := c.liveNodesLocked()
	if len(live) == 0 {
		c.mu.Unlock()
		plan.End(icescope.StrAttr("outcome", "no-nodes"))
		c.met.jobsFailed.Inc()
		return ErrNoNodes
	}
	// No up-front placement: the job just appends fine-grained shards to
	// the global queue, and the credit loop streams them to whichever node
	// has window room. Placement is decided shard-by-shard at pull time,
	// so relative node speed — not a plan drawn before the first cell ran
	// — determines who executes the tail.
	shards := 0
	for lo := start; lo < end; lo += c.cfg.ShardCells {
		hi := min(lo+c.cfg.ShardCells, end)
		c.shardSeq++
		sh := &meshShard{id: c.shardSeq, job: job, start: lo, end: hi}
		c.shards[sh.id] = sh
		c.pending = append(c.pending, sh)
		job.pending++
		shards++
	}
	sends := c.dispatchLocked()
	c.mu.Unlock()
	plan.End(icescope.IntAttr("shards", shards), icescope.IntAttr("nodes", len(live)))
	c.flush(sends)

	defer c.releaseJob(job)
	select {
	case <-job.done:
		if job.failed != nil {
			c.met.jobsFailed.Inc()
		}
		return job.failed
	case <-ctx.Done():
		c.met.jobsFailed.Inc()
		c.mu.Lock()
		job.finish(ctx.Err())
		c.mu.Unlock()
		return ctx.Err()
	}
}

// assignment pairs a planned send with its target, so socket writes can
// happen outside the coordinator lock.
type assignment struct {
	node *meshNode
	msg  *Assign
}

// windowLocked is node n's credit: the number of shards it may hold in
// flight. The default sizes the window so the node's workers stay fed —
// enough shards to cover its capacity at the configured grain, plus two
// so the next pull overlaps the current execution — while keeping the
// tail stealable: everything beyond the window lives on the coordinator
// queue where a faster node can take it. Callers hold c.mu.
func (c *Coordinator) windowLocked(n *meshNode) int {
	if c.cfg.Window > 0 {
		return c.cfg.Window
	}
	w := (n.capacity+c.cfg.ShardCells-1)/c.cfg.ShardCells + 2
	if w < 2 {
		w = 2
	}
	return w
}

// pickNodeLocked chooses the node to pull the queue head: least-loaded
// among live nodes with spare window credit, capacity-weighted; ties go
// to the node that has served the fewest cells, then to name order. A
// re-queued shard prefers a node other than its previous assignee (the
// previous one was slow or suspect) but falls back to it rather than
// stall. Placement never affects results — cells are pure functions of
// their index — so this is purely a throughput policy. Returns nil when
// no node has credit. Callers hold c.mu.
func (c *Coordinator) pickNodeLocked(sh *meshShard) *meshNode {
	better := func(n, old *meshNode) bool {
		nl, ol := len(n.inflight)*old.capacity, len(old.inflight)*n.capacity
		if nl != ol {
			return nl < ol
		}
		if n.cellsDone != old.cellsDone {
			return n.cellsDone < old.cellsDone
		}
		return n.name < old.name
	}
	var target, previous *meshNode
	for _, n := range c.nodes {
		if n.draining || len(n.inflight) >= c.windowLocked(n) {
			continue
		}
		if n == sh.lastNode {
			previous = n
			continue
		}
		if target == nil || better(n, target) {
			target = n
		}
	}
	if target == nil {
		target = previous
	}
	return target
}

// dispatchLocked streams queued shards to nodes with window credit, in
// queue order, until the queue is empty or every node's window is full.
// This is the single scheduling step; it runs on every event that frees
// or adds capacity — job enqueue, ShardDone, node join, re-queue, and
// (as a safety net) heartbeat. Callers hold c.mu and must flush the
// returned sends after unlocking.
func (c *Coordinator) dispatchLocked() []assignment {
	var sends []assignment
	for len(c.pending) > 0 {
		sh := c.pending[0]
		if sh.job.finished {
			c.pending = c.pending[1:]
			delete(c.shards, sh.id)
			continue
		}
		target := c.pickNodeLocked(sh)
		if target == nil {
			break // every node at its window; the next ShardDone resumes
		}
		c.pending = c.pending[1:]
		sends = append(sends, c.assignToLocked(sh, target))
	}
	return sends
}

// assignToLocked records the shard's assignment to target and builds the
// Assign frame; the caller sends after unlocking. Callers hold c.mu.
func (c *Coordinator) assignToLocked(sh *meshShard, target *meshNode) assignment {
	sh.node = target
	target.inflight[sh.id] = sh
	c.met.shardsAssigned.Inc()
	if sh.job.span.Active() {
		sh.span.End(icescope.StrAttr("outcome", "requeued"))
		sh.span = sh.job.span.Child(fmt.Sprintf("shard %d [%d,%d) %s", sh.id, sh.start, sh.end, target.name))
	}
	if c.cfg.ShardDeadline > 0 {
		if sh.deadline != nil {
			sh.deadline.Stop()
		}
		id, node := sh.id, target
		sh.deadline = time.AfterFunc(c.cfg.ShardDeadline, func() { c.shardTimedOut(id, node) })
	}
	p := sh.job.p
	return assignment{node: target, msg: &Assign{
		Shard: sh.id, Scenario: sh.job.scenario,
		Seed: p.Seed, Cells: p.Cells, Start: sh.start, End: sh.end,
		Duration: p.Duration, Codec: p.WireCodec, Knobs: p.Knobs,
		// Traced jobs ask the node to forward its spans back; untraced
		// ones skip the whole forwarding plane on the node.
		Trace: sh.job.span.Active(),
	}}
}

// flush performs the socket writes a locked planning step deferred. A
// failed write evicts the node, which re-queues everything it held.
func (c *Coordinator) flush(sends []assignment) {
	for _, a := range sends {
		if err := a.node.send(a.msg); err != nil {
			c.nodeLost(a.node, err)
		}
	}
}

func (c *Coordinator) liveNodesLocked() []*meshNode {
	out := make([]*meshNode, 0, len(c.nodes))
	for _, n := range c.nodes {
		if !n.draining {
			out = append(out, n)
		}
	}
	return out
}

// onCellDone merges one delivered cell; onCellBatch merges a node-side
// flush of many under a single lock acquisition — the amortization that
// keeps shard size 1 from turning every cell into a contended merge.
func (c *Coordinator) onCellDone(node *meshNode, m *CellDone) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mergeCellLocked(node, m)
}

func (c *Coordinator) onCellBatch(node *meshNode, m *CellBatch) {
	c.met.cellBatches.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range m.Cells {
		c.mergeCellLocked(node, &m.Cells[i])
	}
}

// mergeCellLocked merges one delivered cell. Duplicates (a shard
// finished by a node we had already presumed dead and re-assigned) are
// dropped: both copies are byte-identical by the determinism contract,
// so first wins. deliver runs under the coordinator lock, which
// serializes it per coordinator and orders every delivery before the
// job's close. Callers hold c.mu.
func (c *Coordinator) mergeCellLocked(node *meshNode, m *CellDone) {
	sh, ok := c.shards[m.Shard]
	if !ok || sh.job.finished {
		return
	}
	job := sh.job
	i := m.Index - job.base
	if i < 0 || i >= len(job.seen) || job.seen[i] {
		return
	}
	job.seen[i] = true
	node.cellsDone++
	c.met.cellsDone.Inc()
	res := fleet.Result{
		Cell:         fleet.Cell{Index: m.Index, Seed: m.Seed},
		Events:       m.Events,
		WireBytes:    m.WireBytes,
		WireEncodeNS: m.WireEncodeNS,
	}
	if len(m.Metrics) > 0 {
		res.Metrics = m.Metrics
	}
	if m.Err != "" {
		res.Err = errors.New(m.Err)
	}
	job.deliver(res)
}

// onShardDone retires one assignment. A shard-level error is a
// deterministic failure (unknown scenario, bad range) that would fail
// identically anywhere — the job fails rather than retrying.
func (c *Coordinator) onShardDone(node *meshNode, m *ShardDone) {
	c.mu.Lock()
	sh, ok := c.shards[m.Shard]
	if !ok || sh.node != node {
		c.mu.Unlock()
		return // stale: the shard was re-assigned or the job is gone
	}
	delete(c.shards, sh.id)
	delete(node.inflight, sh.id)
	if sh.deadline != nil {
		sh.deadline.Stop()
	}
	outcome := "done"
	if m.Err != "" {
		outcome = "failed"
	}
	sh.span.End(icescope.StrAttr("outcome", outcome), icescope.IntAttr("cells", sh.end-sh.start))
	sh.span = icescope.Span{}
	job := sh.job
	if !job.finished {
		if m.Err != "" {
			job.finish(fmt.Errorf("icemesh: node %s shard [%d,%d): %s", node.name, sh.start, sh.end, m.Err))
		} else if job.pending--; job.pending == 0 {
			job.finish(nil)
		}
	}
	// The retiring shard freed one slot of this node's window: pull the
	// next queued shard. This is the streaming loop's heartbeat — the
	// queue drains at exactly the rate the mesh completes work, so the
	// fastest node ends up executing the most shards.
	sends := c.dispatchLocked()
	c.mu.Unlock()
	c.flush(sends)
}

// onSpanBatch injects a node's forwarded spans into the owning job's
// trace. The frame's Shard is a job locator — any assignment of the job
// still active on the sending node — not an attribution claim; a stale
// locator (job finished, shard re-assigned) drops the frame, which is
// benign: spans are observability, and a finished job's trace is
// already sealed. Node offsets are re-based onto the job trace's epoch
// by comparing the node's trace clock at flush (NowNS) against ours
// now; network latency skews every injected offset by the same one-way
// delay, which is exactly the error bar a cross-node trace carries.
// Injected spans publish live events, so a subscriber watching the
// job's /events stream sees node spans mid-job.
func (c *Coordinator) onSpanBatch(node *meshNode, m *SpanBatch) {
	c.met.spanBatches.Inc()
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.shards[m.Shard]
	if !ok || sh.job.finished || !sh.job.span.Active() {
		c.met.spanBatchesStale.Inc()
		return
	}
	job := sh.job
	tr := job.span.Trace()
	base := tr.Now() - time.Duration(m.NowNS)
	if base < 0 {
		base = 0
	}
	umbrella, ok := job.nodeSpans[node.name]
	if !ok {
		if job.nodeSpans == nil {
			job.nodeSpans = map[string]icescope.Span{}
		}
		umbrella = job.span.Child("node " + node.name)
		job.nodeSpans[node.name] = umbrella
	}
	for i := range m.Spans {
		rec := &m.Spans[i]
		var attrs []icescope.Attr
		for _, a := range rec.Attrs {
			if a.IsStr {
				attrs = append(attrs, icescope.StrAttr(a.Key, a.Str))
			} else {
				attrs = append(attrs, icescope.NumAttr(a.Key, a.Num))
			}
		}
		tr.InjectSpan(umbrella, rec.Name, base+time.Duration(rec.StartNS), base+time.Duration(rec.EndNS), attrs...)
	}
	c.met.spansForwarded.Add(uint64(len(m.Spans)))
}

// nodeLost evicts a node and re-queues every shard it held.
func (c *Coordinator) nodeLost(node *meshNode, cause error) {
	c.mu.Lock()
	if c.nodes[node.name] != node {
		c.mu.Unlock()
		return // already evicted
	}
	delete(c.nodes, node.name)
	c.met.nodesLost.Inc()
	c.dropNodeGauges(node.name)
	c.cfg.Logf("icemesh: node %s lost: %v", node.name, cause)
	orphans := make([]*meshShard, 0, len(node.inflight))
	for _, sh := range node.inflight {
		orphans = append(orphans, sh)
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].id < orphans[j].id })
	sends := c.requeueLocked(orphans, fmt.Errorf("icemesh: node %s lost: %w", node.name, cause))
	c.mu.Unlock()
	node.conn.Close()
	c.flush(sends)
}

// shardTimedOut re-assigns one shard that blew its deadline while its
// node stayed otherwise alive (wedged, or just slower than the SLA).
func (c *Coordinator) shardTimedOut(id uint64, node *meshNode) {
	c.mu.Lock()
	sh, ok := c.shards[id]
	if !ok || sh.node != node || sh.job.finished {
		c.mu.Unlock()
		return
	}
	delete(node.inflight, sh.id)
	c.cfg.Logf("icemesh: shard %d [%d,%d) deadline on node %s, re-assigning", sh.id, sh.start, sh.end, node.name)
	sends := c.requeueLocked([]*meshShard{sh}, fmt.Errorf("icemesh: shard %d deadline exceeded on %s", id, node.name))
	c.mu.Unlock()
	c.flush(sends)
}

// requeueLocked pushes orphaned shards back onto the FRONT of the queue
// — they are older than everything queued behind them, and front-placed
// retries keep the merge window (the span of indices with holes) small.
// A job fails once a shard's retry budget is spent, or immediately when
// the mesh has no live node left to ever run it. Callers hold c.mu and
// must flush the returned sends after unlocking.
func (c *Coordinator) requeueLocked(orphans []*meshShard, cause error) []assignment {
	requeued := make([]*meshShard, 0, len(orphans))
	for _, sh := range orphans {
		if sh.job.finished {
			delete(c.shards, sh.id)
			continue
		}
		sh.retries++
		c.met.shardRetries.Inc()
		if sh.retries > c.cfg.MaxRetries {
			sh.job.finish(fmt.Errorf("icemesh: shard [%d,%d) failed after %d attempts: %w", sh.start, sh.end, sh.retries, cause))
			delete(c.shards, sh.id)
			continue
		}
		if len(c.liveNodesLocked()) == 0 {
			sh.job.finish(errors.Join(ErrNoNodes, cause))
			delete(c.shards, sh.id)
			continue
		}
		sh.lastNode = sh.node
		sh.node = nil
		if sh.deadline != nil {
			sh.deadline.Stop()
			sh.deadline = nil
		}
		requeued = append(requeued, sh)
	}
	if len(requeued) > 0 {
		c.pending = append(requeued, c.pending...)
	}
	return c.dispatchLocked()
}

// releaseJob drops a finished job's remaining shard bookkeeping,
// including anything still sitting on the queue, and seals the per-node
// umbrella spans — RunRange defers it, so the umbrellas end before the
// gateway finishes the job's trace and they appear in the terminal
// export.
func (c *Coordinator) releaseJob(job *meshJob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, um := range job.nodeSpans {
		um.End(icescope.StrAttr("node", name))
	}
	job.nodeSpans = nil
	for id, sh := range c.shards {
		if sh.job != job {
			continue
		}
		if sh.deadline != nil {
			sh.deadline.Stop()
		}
		if sh.node != nil {
			delete(sh.node.inflight, id)
		}
		delete(c.shards, id)
	}
	kept := c.pending[:0]
	for _, sh := range c.pending {
		if sh.job != job {
			kept = append(kept, sh)
		}
	}
	c.pending = kept
}

// MetricsText renders the mesh registry in Prometheus text exposition
// format (HELP/TYPE lines included); icegate appends it to /metrics when
// the mesh is the serving backend, and the OnCollect hook refreshes the
// per-node gauges just before rendering.
func (c *Coordinator) MetricsText() string {
	return c.met.reg.Expose()
}
