package icemesh

import (
	"context"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/fleet"
)

// Streaming byte-identity sweep: the merge contract must hold at every
// (node count, shard grain) corner the config exposes, because the
// whole point of work-stealing is that placement varies run to run.
func TestMeshStreamingByteIdentityAcrossNodeCounts(t *testing.T) {
	spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
		Seed: 42, Cells: 9, Knobs: map[string]float64{"requests": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := fleet.Runner{Workers: 4}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4} {
		for _, shardCells := range []int{1, 3, 64} {
			t.Run(fmt.Sprintf("nodes=%d/shard=%d", nodes, shardCells), func(t *testing.T) {
				coord, _ := startMesh(t, Config{ShardCells: shardCells}, nodes, 2)
				mesh, err := fleet.Runner{Workers: 4, Engine: coord}.RunContext(context.Background(), spec, nil)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := summarize(mesh), summarize(local); got != want {
					t.Fatalf("mesh table differs from local:\n%s\nvs\n%s", got, want)
				}
			})
		}
	}
}

// A node that joins mid-job must start pulling queued shards immediately
// — the join-side half of elasticity (the kill test covers the leave
// side) — and the merged table stays byte-identical.
func TestMeshNodeJoinMidJobStealsQueuedShards(t *testing.T) {
	seed := 9000 + killSeeds.Add(1)
	const cells = 8
	// One node, one worker, shard size 1: the window holds a few shards
	// and the rest of the job waits on the coordinator queue.
	coord, _ := startMesh(t, Config{ShardCells: 1, Heartbeat: 50 * time.Millisecond}, 1, 1)

	spec, err := fleet.Build("mesh-gated", fleet.Params{Seed: seed, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	type meshOut struct {
		res []fleet.Result
		err error
	}
	done := make(chan meshOut, 1)
	go func() {
		res, err := fleet.Runner{Workers: 4, Engine: coord}.RunContext(context.Background(), spec, nil)
		done <- meshOut{res, err}
	}()

	// Wait until the first node is saturated and shards are queued.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		queued := len(coord.pending)
		coord.mu.Unlock()
		if queued > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never backed up behind the single node")
		}
		time.Sleep(time.Millisecond)
	}

	// Join a second node mid-job. With every cell gated, the only way it
	// can hold work is the join-time dispatch pulling from the queue.
	ln := coordListener(t, coord)
	joiner := NewNode(NodeConfig{Coordinator: ln, Name: "joiner", Workers: 1, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() {
		if err := joiner.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("joiner: %v", err)
		}
	}()
	deadline = time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		n := coord.nodes["joiner"]
		holds := n != nil && len(n.inflight) > 0
		coord.mu.Unlock()
		if holds {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("mid-job joiner never received queued work")
		}
		time.Sleep(time.Millisecond)
	}

	close(meshGate(seed))
	out := <-done
	if out.err != nil {
		t.Fatalf("mesh run with mid-job join: %v", out.err)
	}

	local, err := fleet.Runner{Workers: 4}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summarize(out.res), summarize(local); got != want {
		t.Fatalf("post-join mesh table differs from local:\n%s\nvs\n%s", got, want)
	}
	coord.mu.Lock()
	joined := coord.nodes["joiner"].cellsDone
	coord.mu.Unlock()
	if joined == 0 {
		t.Fatal("joiner delivered no cells — join-time dispatch tested nothing")
	}
}

// The deadline-vs-ShardDone race, pinned without sleeps by driving the
// coordinator's handlers directly in both orders: a shard is re-queued
// exactly once per expiry, a ShardDone that already retired it makes the
// timeout a no-op, and a late ShardDone from the old assignee cannot
// retire the re-assigned shard.
func TestShardDeadlineRequeueExactlyOnce(t *testing.T) {
	c := NewCoordinator(Config{ShardCells: 1, ShardDeadline: time.Hour, Logf: t.Logf})
	t.Cleanup(c.Close)
	a := fakeNode(t, c, "a")
	b := fakeNode(t, c, "b")

	newShard := func() (*meshShard, *meshJob) {
		job := &meshJob{
			scenario: "unused", p: fleet.Params{Cells: 1},
			deliver: func(fleet.Result) {},
			base:    0, seen: make([]bool, 1), pending: 1,
			done: make(chan struct{}),
		}
		c.mu.Lock()
		c.shardSeq++
		sh := &meshShard{id: c.shardSeq, job: job, start: 0, end: 1}
		c.shards[sh.id] = sh
		c.pending = append(c.pending, sh)
		c.dispatchLocked() // assigns to "a" (name-order tiebreak); sends dropped: no real node executes
		c.mu.Unlock()
		if sh.node != a {
			t.Fatalf("setup: shard on %q, want a", sh.node.name)
		}
		return sh, job
	}

	// Order 1: ShardDone first, then the (now stale) deadline fires.
	sh, job := newShard()
	c.onShardDone(a, &ShardDone{Shard: sh.id})
	if !job.finished {
		t.Fatal("clean ShardDone did not finish the 1-shard job")
	}
	c.shardTimedOut(sh.id, a)
	if got := c.met.shardRetries.Value(); got != 0 {
		t.Fatalf("stale deadline after ShardDone re-queued the shard: retries = %d, want 0", got)
	}

	// Order 2: deadline fires first; the late ShardDone from the old
	// assignee and a duplicate timeout are both no-ops.
	sh, job = newShard()
	c.shardTimedOut(sh.id, a)
	if got := c.met.shardRetries.Value(); got != 1 {
		t.Fatalf("deadline expiry re-queued %d times, want 1", got)
	}
	if sh.retries != 1 || sh.node != b {
		t.Fatalf("after timeout: retries=%d node=%v, want 1 re-assignment onto b", sh.retries, sh.node)
	}
	c.mu.Lock()
	if len(a.inflight) != 0 {
		t.Fatal("timed-out shard still counted against a's window")
	}
	c.mu.Unlock()

	c.onShardDone(a, &ShardDone{Shard: sh.id}) // late SD from the old assignee
	if job.finished {
		t.Fatal("late ShardDone from the old assignee retired the re-assigned shard")
	}
	c.shardTimedOut(sh.id, a) // duplicate timeout for the old assignment
	if got := c.met.shardRetries.Value(); got != 1 {
		t.Fatalf("duplicate timeout re-queued again: retries = %d, want 1", got)
	}

	c.onShardDone(b, &ShardDone{Shard: sh.id}) // the real assignee retires it
	if !job.finished || job.failed != nil {
		t.Fatalf("re-assigned shard did not finish cleanly: finished=%v err=%v", job.finished, job.failed)
	}
}

// fakeNode registers a coordinator-side node backed by one end of a pipe
// — enough identity for the scheduling handlers. The far end discards
// whatever the coordinator assigns; nothing executes.
func fakeNode(t *testing.T, c *Coordinator, name string) *meshNode {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close(); server.Close() })
	go func() { _, _ = io.Copy(io.Discard, server) }()
	n := &meshNode{
		name:     name,
		capacity: 1,
		conn:     client,
		inflight: map[uint64]*meshShard{},
		lastBeat: time.Now(),
		joined:   time.Now(),
	}
	c.mu.Lock()
	c.nodes[name] = n
	c.mu.Unlock()
	return n
}

// coordListener digs the listen address back out of a startMesh'd
// coordinator by asking one of its nodes where it dialed.
func coordListener(t *testing.T, c *Coordinator) string {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		return n.conn.LocalAddr().String()
	}
	t.Fatal("no nodes registered")
	return ""
}
