package icemesh

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icegate"
	"repro/internal/icescope"
)

// The acceptance criterion for the distribution layer: every icerun
// table renders byte-identical whether its fleet cells run locally or
// across a 2-node mesh. Fleet-backed experiments (F1, E6) actually fan
// out; the rest exercise the fallback paths (hand-built specs and
// non-fleet runners execute locally even with an engine installed) —
// either way the bytes must not move. The third leg runs the mesh with
// a streamed trace attached (live event subscriber + node span
// forwarding live), pinning the telemetry plane as observation-only
// across all 14 tables.
func TestAllTablesByteIdenticalLocalVsMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("full 14-table differential; skipped in -short")
	}
	coord, _ := startMesh(t, Config{}, 2, 2)

	for _, id := range experiments.IDs() {
		t.Run(id, func(t *testing.T) {
			local, err := experiments.Run(id, experiments.Options{Workers: 2})
			if err != nil {
				t.Fatalf("local: %v", err)
			}
			mesh, err := experiments.Run(id, experiments.Options{Workers: 2, Engine: coord})
			if err != nil {
				t.Fatalf("mesh: %v", err)
			}
			if local.String() != mesh.String() {
				t.Fatalf("table %s differs across backends:\n--- local ---\n%s\n--- mesh ---\n%s",
					id, local.String(), mesh.String())
			}
			tr := icescope.NewTrace("table " + id)
			tr.StreamEvents(8192)
			_, live, _ := tr.SubscribeEvents()
			root := tr.Start(icescope.Span{}, "table "+id)
			streamed, err := experiments.Run(id, experiments.Options{Workers: 2, Engine: coord, Trace: root})
			root.End()
			tr.CloseEvents()
			for range live {
			}
			if err != nil {
				t.Fatalf("mesh+stream: %v", err)
			}
			if local.String() != streamed.String() {
				t.Fatalf("table %s differs with a streamed trace attached:\n--- local ---\n%s\n--- streamed mesh ---\n%s",
					id, local.String(), streamed.String())
			}
		})
	}
	if coord.met.cellsDone.Value() == 0 {
		t.Fatal("mesh executed no cells; the differential compared local against local")
	}
}

// The serving layer on a mesh backend: a scenario job's rendered table
// is byte-identical to the local backend's, the per-cell stream carries
// every cell, and /metrics reports the backend plus the mesh gauges.
func TestGatewayMeshBackendByteIdenticalToLocal(t *testing.T) {
	coord, _ := startMesh(t, Config{ShardCells: 2}, 2, 2)

	localSched := icegate.NewScheduler(icegate.Config{QueueDepth: 4, Executors: 1, Workers: 4})
	t.Cleanup(localSched.Close)
	meshSched := icegate.NewScheduler(icegate.Config{QueueDepth: 4, Executors: 1, Workers: 4, Backend: coord})
	t.Cleanup(meshSched.Close)

	req := icegate.Request{Scenario: fleet.ScenarioXRayVentSync, Seed: 11, Cells: 5,
		Knobs: map[string]float64{"requests": 4}}
	run := func(s *icegate.Scheduler) string {
		t.Helper()
		job, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		<-job.Done()
		table, ok := job.Table()
		if !ok {
			t.Fatalf("job ended %v: %+v", job.Status(), job.View())
		}
		if v := job.View(); v.CellsDone != req.Cells {
			t.Fatalf("streamed %d cells, want %d", v.CellsDone, req.Cells)
		}
		return table
	}

	localTable := run(localSched)
	meshTable := run(meshSched)
	if localTable != meshTable {
		t.Fatalf("gateway tables differ across backends:\n--- local ---\n%s\n--- mesh ---\n%s",
			localTable, meshTable)
	}

	m := meshSched.MetricsText()
	for _, want := range []string{
		`icegate_backend{name="mesh"} 1`,
		"icemesh_nodes_live 2",
		"icemesh_cells_done_total",
		`icemesh_node_cells_per_second{node="worker-a"}`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("mesh-backed /metrics missing %q:\n%s", want, m)
		}
	}
}
