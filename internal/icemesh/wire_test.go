package icemesh

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden wire vectors and fuzz seed corpus")

// goldenMessages pins one vector per RPC message type, field values
// chosen to exercise varint widths, zigzag negatives, and map ordering.
func goldenMessages() []struct {
	name string
	msg  any
} {
	return []struct {
		name string
		msg  any
	}{
		{"hello", &Hello{Node: "node-a", Capacity: 8}},
		{"welcome", &Welcome{Node: "node-a", HeartbeatMS: 1000}},
		{"heartbeat", &Heartbeat{Inflight: 2, CellsDone: 300}},
		{"assign", &Assign{Shard: 9, Scenario: "pca-supervised", Seed: -42, Cells: 64, Start: 16, End: 32,
			Duration: 2 * sim.Hour, Codec: "binary", Knobs: map[string]float64{"failsafe": 1, "loss": 0.15}}},
		{"assign-traced", &Assign{Shard: 10, Scenario: "tele-icu-probe", Seed: 7, Cells: 8, Start: 0, End: 4,
			Duration: sim.Hour, Trace: true}},
		{"celldone", &CellDone{Shard: 9, Index: 17, Seed: 1234567, Events: 250000, WireBytes: 65536,
			WireEncodeNS: 777, Metrics: map[string]float64{"alarms": 3, "min_spo2": 88.5}}},
		{"celldone-err", &CellDone{Shard: 9, Index: 18, Seed: -7, Err: "cell panicked: causality"}},
		{"cellbatch", &CellBatch{Cells: []CellDone{
			{Shard: 9, Index: 17, Seed: 1234567, Events: 250000, WireBytes: 65536,
				WireEncodeNS: 777, Metrics: map[string]float64{"alarms": 3, "min_spo2": 88.5}},
			{Shard: 11, Index: 18, Seed: -7, Err: "cell panicked: causality"},
		}}},
		{"spanbatch", &SpanBatch{Shard: 9, NowNS: 5_000_000, Spans: []SpanRec{
			{Name: "cell run", StartNS: 1_000_000, EndNS: 2_500_000, Attrs: []SpanAttr{
				{Key: "cell", Num: 17}, {Key: "mode", Str: "proto", IsStr: true}}},
			{Name: "dial coordinator", StartNS: 0, EndNS: 0},
		}}},
		{"sharddone", &ShardDone{Shard: 9}},
		{"sharddone-err", &ShardDone{Shard: 10, Err: "unknown scenario"}},
		{"drain", &Drain{Reason: "SIGTERM"}},
	}
}

// TestGoldenMeshVectors pins the mesh RPC format byte for byte, exactly
// as icewire's golden vectors pin the envelope codec. A failure means
// the format changed — bump MeshV1 and write a migration, don't
// regenerate blindly.
func TestGoldenMeshVectors(t *testing.T) {
	for _, g := range goldenMessages() {
		payload, err := AppendMessage(nil, g.msg)
		if err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		path := filepath.Join("testdata", g.name+".golden")
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(hex.EncodeToString(payload)+"\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s (run with -update to regenerate): %v", g.name, err)
		}
		got := hex.EncodeToString(payload)
		if got != strings.TrimSpace(string(want)) {
			t.Errorf("%s: wire format drifted:\ngot  %s\nwant %s", g.name, got, strings.TrimSpace(string(want)))
		}
		// Every golden payload decodes back to its own message.
		decoded, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", g.name, err)
		}
		if !reflect.DeepEqual(decoded, g.msg) {
			t.Errorf("%s: decode mismatch:\ngot  %+v\nwant %+v", g.name, decoded, g.msg)
		}
	}
}

// Unknown versions and type codes are rejected outright.
func TestMeshVersionAndTypeRejection(t *testing.T) {
	payload, err := AppendMessage(nil, &Drain{Reason: "x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []byte{0x00, 0x02, 0xFF} {
		bad := append([]byte(nil), payload...)
		bad[0] = v
		if _, err := DecodeMessage(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("version 0x%02x: err = %v, want version rejection", v, err)
		}
	}
	for _, c := range []byte{0, 10, 0xFF} {
		bad := append([]byte(nil), payload...)
		bad[1] = c
		if _, err := DecodeMessage(bad); err == nil {
			t.Errorf("type code 0x%02x accepted", c)
		}
	}
}

// SpanBatch validation: an empty batch and a span whose end precedes
// its start are rejected on the encode side and the decode side alike.
func TestSpanBatchValidation(t *testing.T) {
	if _, err := AppendMessage(nil, &SpanBatch{Shard: 1, NowNS: 2}); err == nil {
		t.Error("empty span batch encoded")
	}
	bad := &SpanBatch{Shard: 1, NowNS: 2, Spans: []SpanRec{{Name: "x", StartNS: 5, EndNS: 2}}}
	if _, err := AppendMessage(nil, bad); err == nil || !strings.Contains(err.Error(), "ends before") {
		t.Errorf("inverted span encode err = %v", err)
	}
	// Hand-built payloads with the same defects die at decode.
	if _, err := DecodeMessage([]byte{MeshV1, codeSpanBatch, 0, 0, 0}); err == nil {
		t.Error("empty span batch decoded")
	}
	if _, err := DecodeMessage([]byte{MeshV1, codeSpanBatch, 0, 0, 1, 1, 'x', 5, 2, 0}); err == nil {
		t.Error("inverted span decoded")
	}
}

// Every truncation of every golden payload is rejected, never accepted
// with a different meaning and never a panic.
func TestMeshEveryTruncationRejected(t *testing.T) {
	for _, g := range goldenMessages() {
		payload, err := AppendMessage(nil, g.msg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(payload); n++ {
			if _, err := DecodeMessage(payload[:n]); err == nil {
				t.Errorf("%s truncated to %d/%d bytes accepted", g.name, n, len(payload))
			}
		}
		// Trailing garbage is rejected too.
		if _, err := DecodeMessage(append(append([]byte(nil), payload...), 0)); err == nil {
			t.Errorf("%s with trailing byte accepted", g.name)
		}
	}
}

// The stream framing: messages written to a connection come back in
// order, a frame length beyond MaxFrame is rejected before allocation,
// and a truncated stream errors cleanly.
func TestMeshStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	var scratch []byte
	var err error
	for _, g := range goldenMessages() {
		if scratch, err = WriteMessage(&buf, scratch, g.msg); err != nil {
			t.Fatalf("%s: write: %v", g.name, err)
		}
	}
	r := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	for _, g := range goldenMessages() {
		m, err := ReadMessage(r)
		if err != nil {
			t.Fatalf("%s: read: %v", g.name, err)
		}
		if !reflect.DeepEqual(m, g.msg) {
			t.Fatalf("%s: framed round trip mismatch: %+v", g.name, m)
		}
	}
	if _, err := ReadMessage(r); err == nil {
		t.Fatal("read past end of stream succeeded")
	}

	huge := bufio.NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}))
	if _, err := ReadMessage(huge); err == nil || !strings.Contains(err.Error(), "ceiling") {
		t.Fatalf("oversize frame err = %v, want ceiling rejection", err)
	}

	// A frame whose declared length exceeds the bytes behind it errors.
	short := bufio.NewReader(bytes.NewReader([]byte{0x10, MeshV1, codeDrain}))
	if _, err := ReadMessage(short); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// FuzzDecodeMeshMessage asserts the decoder's safety contract on
// arbitrary bytes: it never panics, and anything it accepts re-encodes
// to the identical payload — accepted messages have exactly one wire
// form, the same bar FuzzDecodeBinary holds icewire to.
func FuzzDecodeMeshMessage(f *testing.F) {
	for _, g := range goldenMessages() {
		payload, err := AppendMessage(nil, g.msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{MeshV1})
	f.Add([]byte{MeshV1, codeAssign, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add(append([]byte{MeshV1, codeCellDone}, bytes.Repeat([]byte{0x80}, 11)...))
	f.Add([]byte{MeshV1, codeCellBatch, 0})                            // empty batch: rejected
	f.Add([]byte{MeshV1, codeCellBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // hostile count
	f.Add([]byte{MeshV1, codeSpanBatch, 0, 0, 0})                      // empty span batch: rejected
	f.Add([]byte{MeshV1, codeSpanBatch, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add([]byte{MeshV1, codeSpanBatch, 0, 0, 1, 1, 'x', 5, 2, 0}) // span ends before it starts

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejection is always fine; panicking is not
		}
		re, err := AppendMessage(nil, m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical:\nin  %x\nout %x", data, re)
		}
	})
}

// FuzzMeshRoundTrip asserts encode∘decode is the identity for valid
// messages across every type, including negative seeds, non-finite knob
// values, and arbitrary strings.
func FuzzMeshRoundTrip(f *testing.F) {
	f.Add(byte(0), "node-a", uint64(8), int64(0), "k", 0.5, "")
	f.Add(byte(3), "pca-supervised", uint64(64), int64(-42), "loss", 0.15, "binary")
	f.Add(byte(4), "m", uint64(17), int64(7), "alarms", math.Inf(1), "boom")
	f.Add(byte(7), "batch", uint64(64), int64(-3), "min_spo2", 88.5, "err")

	f.Fuzz(func(t *testing.T, kind byte, s1 string, u1 uint64, i1 int64, key string, v1 float64, s2 string) {
		n := int(u1 % (1 << 20))
		var kv map[string]float64
		if key != "" {
			kv = map[string]float64{key: v1}
		}
		var msg any
		switch kind % 9 {
		case 0:
			msg = &Hello{Node: s1, Capacity: n}
		case 1:
			msg = &Welcome{Node: s1, HeartbeatMS: u1}
		case 2:
			msg = &Heartbeat{Inflight: n, CellsDone: u1}
		case 3:
			msg = &Assign{Shard: u1, Scenario: s1, Seed: i1, Cells: n, Start: n / 4, End: n / 2,
				Duration: sim.Time(i1), Codec: s2, Knobs: kv}
		case 4:
			msg = &CellDone{Shard: u1, Index: n, Seed: i1, Events: u1, WireBytes: u1 / 2,
				WireEncodeNS: u1 / 3, Err: s2, Metrics: kv}
		case 5:
			msg = &ShardDone{Shard: u1, Err: s2}
		case 6:
			msg = &Drain{Reason: s1}
		case 7:
			msg = &CellBatch{Cells: []CellDone{
				{Shard: u1, Index: n, Seed: i1, Events: u1, Err: s2, Metrics: kv},
				{Shard: u1 + 1, Index: n / 2, Seed: -i1, WireBytes: u1 / 2, WireEncodeNS: u1 / 3},
			}}
		case 8:
			var attrs []SpanAttr
			if key != "" {
				attrs = []SpanAttr{{Key: key, Num: v1}, {Key: key + "s", Str: s2, IsStr: true}}
			}
			msg = &SpanBatch{Shard: u1, NowNS: u1 + uint64(n), Spans: []SpanRec{
				{Name: s1, StartNS: u1 / 2, EndNS: u1/2 + uint64(n), Attrs: attrs},
				{Name: s2, StartNS: u1, EndNS: u1},
			}}
		}
		payload, err := AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("valid message failed to encode: %v", err)
		}
		got, err := DecodeMessage(payload)
		if err != nil {
			t.Fatalf("own payload failed to decode: %v", err)
		}
		// Encoding is canonical, so byte-equal re-encodings are the
		// identity proof — and unlike DeepEqual, bit-exact for NaN.
		re, err := AppendMessage(nil, got)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("round trip mismatch (%+v):\nin  %x\nout %x", got, payload, re)
		}
	})
}

// TestMeshFuzzSeedCorpus regenerates the checked-in corpus with -update.
func TestMeshFuzzSeedCorpus(t *testing.T) {
	if !*update {
		t.Skip("corpus is checked in; run with -update to regenerate")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMeshMessage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	seeds := make(map[string][]byte)
	for _, g := range goldenMessages() {
		payload, err := AppendMessage(nil, g.msg)
		if err != nil {
			t.Fatal(err)
		}
		seeds["golden-"+g.name] = payload
	}
	seeds["empty"] = nil
	seeds["version-only"] = []byte{MeshV1}
	seeds["bad-version"] = []byte{0x02, codeHello, 0}
	seeds["huge-count"] = []byte{MeshV1, codeAssign, 1, 1, 'x', 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	seeds["overlong-varint"] = append([]byte{MeshV1, codeCellDone}, bytes.Repeat([]byte{0x80}, 11)...)
	seeds["empty-batch"] = []byte{MeshV1, codeCellBatch, 0}
	seeds["huge-batch-count"] = []byte{MeshV1, codeCellBatch, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	seeds["empty-span-batch"] = []byte{MeshV1, codeSpanBatch, 0, 0, 0}
	seeds["huge-span-count"] = []byte{MeshV1, codeSpanBatch, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	seeds["span-ends-before-start"] = []byte{MeshV1, codeSpanBatch, 0, 0, 1, 1, 'x', 5, 2, 0}
	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
