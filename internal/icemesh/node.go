package icemesh

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// NodeConfig sizes one worker node.
type NodeConfig struct {
	Coordinator  string  // coordinator address (host:port)
	Name         string  // advertised node name; "" lets the coordinator pick
	Workers      int     // local fleet pool width, advertised as capacity; <=0 means 1
	DialRetry    Backoff // re-dial policy (zero value = 100ms doubling to 5s)
	DialAttempts int     // dial attempts before Run gives up; <=0 means 30
	QueueDepth   int     // assignments accepted but not yet executing; <=0 means 64
	Logf         func(format string, args ...any)

	// Obs, when non-nil, receives the node's serving metrics. The daemon
	// registers the handles once (NewNodeObs) and reuses them across
	// re-dials, so counters survive connection loss.
	Obs *NodeObs

	// Trace, when non-nil, records the node's session: dial/handshake,
	// one span per executed shard, and per-cell fleet spans
	// (cmd/icenode -tracefile). Purely observational — assignment
	// execution and CellDone bytes are identical with tracing on or off.
	Trace *icescope.Trace
}

// NodeObs bundles the worker node's icescope handles: how many shards
// and cells it executed, its heartbeat cadence, and where its time goes
// (shard execution, per-cell latency, pool queue wait).
type NodeObs struct {
	ShardsDone   *icescope.Counter
	ShardsFailed *icescope.Counter
	CellsDone    *icescope.Counter
	Heartbeats   *icescope.Counter
	ShardSeconds *icescope.Histogram
	Fleet        *fleet.Obs
}

// NewNodeObs registers the node metric family on reg (icenode_*) and
// returns the handles for NodeConfig.Obs. Call once per process.
func NewNodeObs(reg *icescope.Registry) *NodeObs {
	return &NodeObs{
		ShardsDone:   reg.Counter("icenode_shards_done_total", "Shard assignments executed to completion."),
		ShardsFailed: reg.Counter("icenode_shards_failed_total", "Shard assignments that failed at build or range validation."),
		CellsDone:    reg.Counter("icenode_cells_done_total", "Cells executed and streamed back."),
		Heartbeats:   reg.Counter("icenode_heartbeats_total", "Heartbeats sent to the coordinator."),
		ShardSeconds: reg.Histogram("icenode_shard_seconds", "Wall time executing one shard assignment.", nil),
		Fleet: &fleet.Obs{
			CellSeconds: reg.Histogram("icenode_cell_seconds",
				"Per-cell execution latency on this node's pool.", nil),
			QueueWaitSeconds: reg.Histogram("icenode_cell_queue_wait_seconds",
				"Per-cell wait between dispatch and worker pickup on this node.", nil),
		},
	}
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 30
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one worker: it registers with the coordinator, heartbeats,
// executes assigned cell ranges on a local fleet pool, and streams each
// cell's result back as it lands. Assignments execute one at a time —
// each already fans out across the node's full worker pool — so the
// advertised capacity is an honest measure of parallelism.
type Node struct {
	cfg NodeConfig

	conn net.Conn
	wmu  sync.Mutex
	wbuf []byte

	mu        sync.Mutex
	name      string // coordinator-assigned name, set after Welcome
	inflight  int    // assignments queued or executing
	cellsDone uint64
	draining  bool

	// sess parents this connection's shard spans; set in Run before the
	// executor goroutine starts, zero when the node is untraced.
	sess icescope.Span
}

// NewNode returns an unconnected node; Run connects and serves.
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg.withDefaults()}
}

// Name reports the coordinator-assigned node name ("" before Welcome).
func (n *Node) Name() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.name
}

func (n *Node) send(m any) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	if n.conn == nil {
		return errors.New("icemesh: node not connected")
	}
	_ = n.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	buf, err := WriteMessage(n.conn, n.wbuf, m)
	n.wbuf = buf
	return err
}

// Run dials the coordinator (with the shared backoff+jitter retry),
// registers, and serves assignments until the connection drops or ctx
// is cancelled. A cleanly drained shutdown (Drain, then cancel) returns
// nil; anything else returns the terminating error.
func (n *Node) Run(ctx context.Context) error {
	dialSp := n.cfg.Trace.Start(icescope.Span{}, "dial coordinator")
	var conn net.Conn
	dial := func() error {
		c, err := (&net.Dialer{Timeout: 3 * time.Second}).DialContext(ctx, "tcp", n.cfg.Coordinator)
		if err == nil {
			conn = c
		}
		return err
	}
	if err := Retry(ctx, n.cfg.DialAttempts, n.cfg.DialRetry, dial); err != nil {
		return fmt.Errorf("icemesh: dialing coordinator %s: %w", n.cfg.Coordinator, err)
	}
	defer conn.Close()
	n.wmu.Lock()
	n.conn = conn
	n.wmu.Unlock()

	if err := n.send(&Hello{Node: n.cfg.Name, Capacity: n.cfg.Workers}); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	first, err := ReadMessage(br)
	if err != nil {
		return fmt.Errorf("icemesh: awaiting welcome: %w", err)
	}
	welcome, ok := first.(*Welcome)
	if !ok {
		return fmt.Errorf("icemesh: expected welcome, got %T", first)
	}
	n.mu.Lock()
	n.name = welcome.Node
	n.mu.Unlock()
	dialSp.End(icescope.StrAttr("node", welcome.Node))
	n.sess = n.cfg.Trace.Start(icescope.Span{}, "session "+welcome.Node)
	defer func() { n.sess.End(); n.sess = icescope.Span{} }()
	beat := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = time.Second
	}
	n.cfg.Logf("icemesh: registered as %s (capacity %d, heartbeat %v)", welcome.Node, n.cfg.Workers, beat)

	// connCtx scopes the helper goroutines to THIS connection: it ends
	// when ctx does or when the read loop breaks, so a dropped connection
	// stops the heartbeats and flushes the queue instead of wedging
	// workers.Wait() — Run must return for the daemon to re-dial.
	connCtx, connCancel := context.WithCancel(ctx)
	defer connCancel()
	// ctx cancellation unblocks the reader by closing the socket.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	queue := make(chan *Assign, n.cfg.QueueDepth)
	var workers sync.WaitGroup
	workers.Add(2)
	go func() { // heartbeats, independent of execution
		defer workers.Done()
		t := time.NewTicker(beat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.mu.Lock()
				hb := &Heartbeat{Inflight: n.inflight, CellsDone: n.cellsDone}
				n.mu.Unlock()
				_ = n.send(hb)
				if n.cfg.Obs != nil {
					n.cfg.Obs.Heartbeats.Inc()
				}
			case <-connCtx.Done():
				return
			}
		}
	}()
	go func() { // executor: one assignment at a time, full pool each
		defer workers.Done()
		for a := range queue {
			n.execute(connCtx, a)
			n.mu.Lock()
			n.inflight--
			n.mu.Unlock()
		}
	}()

	var readErr error
	for {
		_ = conn.SetReadDeadline(time.Time{}) // liveness is the coordinator's side
		m, err := ReadMessage(br)
		if err != nil {
			readErr = err
			connCancel() // connection gone: release heartbeats, skip queued work
			break
		}
		switch v := m.(type) {
		case *Assign:
			n.mu.Lock()
			n.inflight++
			n.mu.Unlock()
			queue <- v
		case *Drain:
			n.cfg.Logf("icemesh: coordinator drain: %s", v.Reason)
		default:
			// Tolerate unknown-but-valid control messages.
		}
	}
	close(queue)
	workers.Wait()

	if ctx.Err() != nil || n.isDraining() {
		return nil // orderly shutdown
	}
	return readErr
}

// execute runs one assigned range and streams results back. Cell-level
// failures ride their CellDone (matching local fleet semantics, where a
// bad cell doesn't kill the ensemble); only range-level failures — an
// unknown scenario, an impossible range — fail the shard.
func (n *Node) execute(ctx context.Context, a *Assign) {
	var t0 time.Time
	if n.cfg.Obs != nil {
		t0 = time.Now()
	}
	sp := icescope.Span{}
	if n.sess.Active() {
		sp = n.sess.Child(fmt.Sprintf("shard %d [%d,%d)", a.Shard, a.Start, a.End))
	}
	spec, err := fleet.Build(a.Scenario, fleet.Params{
		Seed:      a.Seed,
		Cells:     a.Cells,
		Duration:  a.Duration,
		WireCodec: a.Codec,
		Knobs:     a.Knobs,
	})
	if err == nil && a.End > spec.Cells {
		err = fmt.Errorf("range [%d,%d) outside rebuilt spec (%d cells)", a.Start, a.End, spec.Cells)
	}
	if err != nil {
		_ = n.send(&ShardDone{Shard: a.Shard, Err: err.Error()})
		sp.End(icescope.StrAttr("outcome", "failed"))
		if n.cfg.Obs != nil {
			n.cfg.Obs.ShardsFailed.Inc()
		}
		return
	}
	runner := fleet.Runner{Workers: n.cfg.Workers, Span: sp}
	if n.cfg.Obs != nil {
		runner.Obs = n.cfg.Obs.Fleet
	}
	_, _ = runner.RunRangeContext(ctx, spec, a.Start, a.End, func(r fleet.Result) {
		cd := &CellDone{
			Shard: a.Shard, Index: r.Cell.Index, Seed: r.Cell.Seed,
			Events: r.Events, WireBytes: r.WireBytes, WireEncodeNS: r.WireEncodeNS,
			Metrics: r.Metrics,
		}
		if r.Err != nil {
			cd.Err = r.Err.Error()
		}
		_ = n.send(cd)
		n.mu.Lock()
		n.cellsDone++
		n.mu.Unlock()
		if n.cfg.Obs != nil {
			n.cfg.Obs.CellsDone.Inc()
		}
	})
	_ = n.send(&ShardDone{Shard: a.Shard})
	sp.End(icescope.StrAttr("outcome", "done"), icescope.IntAttr("cells", a.End-a.Start))
	if n.cfg.Obs != nil {
		n.cfg.Obs.ShardsDone.Inc()
		n.cfg.Obs.ShardSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// Drain is the node's graceful-shutdown handshake: announce the drain
// (the coordinator assigns nothing more), finish everything queued and
// executing, and return once idle — or with ctx's error at the
// deadline, leaving stragglers to the coordinator's re-assignment.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	already := n.draining
	n.draining = true
	n.mu.Unlock()
	if !already {
		_ = n.send(&Drain{Reason: "node draining"})
	}
	for {
		n.mu.Lock()
		idle := n.inflight == 0
		n.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("icemesh: drain deadline: %w", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
