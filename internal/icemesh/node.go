package icemesh

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/fleet"
)

// NodeConfig sizes one worker node.
type NodeConfig struct {
	Coordinator  string  // coordinator address (host:port)
	Name         string  // advertised node name; "" lets the coordinator pick
	Workers      int     // local fleet pool width, advertised as capacity; <=0 means 1
	DialRetry    Backoff // re-dial policy (zero value = 100ms doubling to 5s)
	DialAttempts int     // dial attempts before Run gives up; <=0 means 30
	QueueDepth   int     // assignments accepted but not yet executing; <=0 means 64
	Logf         func(format string, args ...any)
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 30
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one worker: it registers with the coordinator, heartbeats,
// executes assigned cell ranges on a local fleet pool, and streams each
// cell's result back as it lands. Assignments execute one at a time —
// each already fans out across the node's full worker pool — so the
// advertised capacity is an honest measure of parallelism.
type Node struct {
	cfg NodeConfig

	conn net.Conn
	wmu  sync.Mutex
	wbuf []byte

	mu        sync.Mutex
	name      string // coordinator-assigned name, set after Welcome
	inflight  int    // assignments queued or executing
	cellsDone uint64
	draining  bool
}

// NewNode returns an unconnected node; Run connects and serves.
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg.withDefaults()}
}

// Name reports the coordinator-assigned node name ("" before Welcome).
func (n *Node) Name() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.name
}

func (n *Node) send(m any) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	if n.conn == nil {
		return errors.New("icemesh: node not connected")
	}
	_ = n.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	buf, err := WriteMessage(n.conn, n.wbuf, m)
	n.wbuf = buf
	return err
}

// Run dials the coordinator (with the shared backoff+jitter retry),
// registers, and serves assignments until the connection drops or ctx
// is cancelled. A cleanly drained shutdown (Drain, then cancel) returns
// nil; anything else returns the terminating error.
func (n *Node) Run(ctx context.Context) error {
	var conn net.Conn
	dial := func() error {
		c, err := (&net.Dialer{Timeout: 3 * time.Second}).DialContext(ctx, "tcp", n.cfg.Coordinator)
		if err == nil {
			conn = c
		}
		return err
	}
	if err := Retry(ctx, n.cfg.DialAttempts, n.cfg.DialRetry, dial); err != nil {
		return fmt.Errorf("icemesh: dialing coordinator %s: %w", n.cfg.Coordinator, err)
	}
	defer conn.Close()
	n.wmu.Lock()
	n.conn = conn
	n.wmu.Unlock()

	if err := n.send(&Hello{Node: n.cfg.Name, Capacity: n.cfg.Workers}); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	first, err := ReadMessage(br)
	if err != nil {
		return fmt.Errorf("icemesh: awaiting welcome: %w", err)
	}
	welcome, ok := first.(*Welcome)
	if !ok {
		return fmt.Errorf("icemesh: expected welcome, got %T", first)
	}
	n.mu.Lock()
	n.name = welcome.Node
	n.mu.Unlock()
	beat := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = time.Second
	}
	n.cfg.Logf("icemesh: registered as %s (capacity %d, heartbeat %v)", welcome.Node, n.cfg.Workers, beat)

	// connCtx scopes the helper goroutines to THIS connection: it ends
	// when ctx does or when the read loop breaks, so a dropped connection
	// stops the heartbeats and flushes the queue instead of wedging
	// workers.Wait() — Run must return for the daemon to re-dial.
	connCtx, connCancel := context.WithCancel(ctx)
	defer connCancel()
	// ctx cancellation unblocks the reader by closing the socket.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	queue := make(chan *Assign, n.cfg.QueueDepth)
	var workers sync.WaitGroup
	workers.Add(2)
	go func() { // heartbeats, independent of execution
		defer workers.Done()
		t := time.NewTicker(beat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.mu.Lock()
				hb := &Heartbeat{Inflight: n.inflight, CellsDone: n.cellsDone}
				n.mu.Unlock()
				_ = n.send(hb)
			case <-connCtx.Done():
				return
			}
		}
	}()
	go func() { // executor: one assignment at a time, full pool each
		defer workers.Done()
		for a := range queue {
			n.execute(connCtx, a)
			n.mu.Lock()
			n.inflight--
			n.mu.Unlock()
		}
	}()

	var readErr error
	for {
		_ = conn.SetReadDeadline(time.Time{}) // liveness is the coordinator's side
		m, err := ReadMessage(br)
		if err != nil {
			readErr = err
			connCancel() // connection gone: release heartbeats, skip queued work
			break
		}
		switch v := m.(type) {
		case *Assign:
			n.mu.Lock()
			n.inflight++
			n.mu.Unlock()
			queue <- v
		case *Drain:
			n.cfg.Logf("icemesh: coordinator drain: %s", v.Reason)
		default:
			// Tolerate unknown-but-valid control messages.
		}
	}
	close(queue)
	workers.Wait()

	if ctx.Err() != nil || n.isDraining() {
		return nil // orderly shutdown
	}
	return readErr
}

// execute runs one assigned range and streams results back. Cell-level
// failures ride their CellDone (matching local fleet semantics, where a
// bad cell doesn't kill the ensemble); only range-level failures — an
// unknown scenario, an impossible range — fail the shard.
func (n *Node) execute(ctx context.Context, a *Assign) {
	spec, err := fleet.Build(a.Scenario, fleet.Params{
		Seed:      a.Seed,
		Cells:     a.Cells,
		Duration:  a.Duration,
		WireCodec: a.Codec,
		Knobs:     a.Knobs,
	})
	if err == nil && a.End > spec.Cells {
		err = fmt.Errorf("range [%d,%d) outside rebuilt spec (%d cells)", a.Start, a.End, spec.Cells)
	}
	if err != nil {
		_ = n.send(&ShardDone{Shard: a.Shard, Err: err.Error()})
		return
	}
	_, _ = fleet.Runner{Workers: n.cfg.Workers}.RunRangeContext(ctx, spec, a.Start, a.End, func(r fleet.Result) {
		cd := &CellDone{
			Shard: a.Shard, Index: r.Cell.Index, Seed: r.Cell.Seed,
			Events: r.Events, WireBytes: r.WireBytes, WireEncodeNS: r.WireEncodeNS,
			Metrics: r.Metrics,
		}
		if r.Err != nil {
			cd.Err = r.Err.Error()
		}
		_ = n.send(cd)
		n.mu.Lock()
		n.cellsDone++
		n.mu.Unlock()
	})
	_ = n.send(&ShardDone{Shard: a.Shard})
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// Drain is the node's graceful-shutdown handshake: announce the drain
// (the coordinator assigns nothing more), finish everything queued and
// executing, and return once idle — or with ctx's error at the
// deadline, leaving stragglers to the coordinator's re-assignment.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	already := n.draining
	n.draining = true
	n.mu.Unlock()
	if !already {
		_ = n.send(&Drain{Reason: "node draining"})
	}
	for {
		n.mu.Lock()
		idle := n.inflight == 0
		n.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("icemesh: drain deadline: %w", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
