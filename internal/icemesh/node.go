package icemesh

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/icescope"
)

// NodeConfig sizes one worker node.
type NodeConfig struct {
	Coordinator  string        // coordinator address (host:port)
	Name         string        // advertised node name; "" lets the coordinator pick
	Workers      int           // local fleet pool width, advertised as capacity; <=0 means 1
	DialRetry    Backoff       // re-dial policy (zero value = 100ms doubling to 5s)
	DialAttempts int           // dial attempts before Run gives up; <=0 means 30
	BatchCells   int           // CellDone entries coalesced per CellBatch frame; <=0 means 32
	BatchFlush   time.Duration // max delay before a partial batch flushes; <=0 means 2ms
	Logf         func(format string, args ...any)

	// Obs, when non-nil, receives the node's serving metrics. The daemon
	// registers the handles once (NewNodeObs) and reuses them across
	// re-dials, so counters survive connection loss.
	Obs *NodeObs

	// Trace, when non-nil, records the node's session: dial/handshake,
	// one span per executed shard, and per-cell fleet spans
	// (cmd/icenode -tracefile). Purely observational — assignment
	// execution and CellDone bytes are identical with tracing on or off.
	Trace *icescope.Trace
}

// NodeObs bundles the worker node's icescope handles: how many shards
// and cells it executed, its heartbeat cadence, and where its time goes
// (shard execution, per-cell latency, pool queue wait).
type NodeObs struct {
	ShardsDone   *icescope.Counter
	ShardsFailed *icescope.Counter
	CellsDone    *icescope.Counter
	Heartbeats   *icescope.Counter
	ShardSeconds *icescope.Histogram
	Fleet        *fleet.Obs
}

// NewNodeObs registers the node metric family on reg (icenode_*) and
// returns the handles for NodeConfig.Obs. Call once per process.
func NewNodeObs(reg *icescope.Registry) *NodeObs {
	return &NodeObs{
		ShardsDone:   reg.Counter("icenode_shards_done_total", "Shard assignments executed to completion."),
		ShardsFailed: reg.Counter("icenode_shards_failed_total", "Shard assignments that failed at build or range validation."),
		CellsDone:    reg.Counter("icenode_cells_done_total", "Cells executed and streamed back."),
		Heartbeats:   reg.Counter("icenode_heartbeats_total", "Heartbeats sent to the coordinator."),
		ShardSeconds: reg.Histogram("icenode_shard_seconds", "Wall time executing one shard assignment.", nil),
		Fleet: &fleet.Obs{
			CellSeconds: reg.Histogram("icenode_cell_seconds",
				"Per-cell execution latency on this node's pool.", nil),
			QueueWaitSeconds: reg.Histogram("icenode_cell_queue_wait_seconds",
				"Per-cell wait between dispatch and worker pickup on this node.", nil),
		},
	}
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 30
	}
	if c.BatchCells <= 0 {
		c.BatchCells = 32
	}
	if c.BatchFlush <= 0 {
		c.BatchFlush = 2 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Node is one worker: it registers with the coordinator, heartbeats,
// executes assigned cell ranges, and streams results back in batched
// CellDone frames. Assignments within the coordinator-granted credit
// window execute concurrently, all sharing one persistent fleet session
// per job — the pool bounds actual parallelism at Workers, and the
// session keeps the spec built once, so shard size 1 costs a function
// call, not a scenario rebuild.
type Node struct {
	cfg NodeConfig

	conn net.Conn
	wmu  sync.Mutex
	wbuf []byte

	mu        sync.Mutex
	name      string  // coordinator-assigned name, set after Welcome
	dialMS    float64 // dial+handshake wall time, for forwarded traces
	inflight  int     // assignments accepted and not yet finished
	cellsDone uint64
	draining  bool

	// smu guards the per-job session cache; batch coalesces outgoing
	// cell deliveries. Both are rebuilt per Run (per connection).
	smu      sync.Mutex
	sessions map[string]*nodeSession
	batch    *cellBatcher

	// sess parents this connection's shard spans; set in Run before
	// assignments arrive, zero when the node is untraced.
	sess icescope.Span
}

// nodeSession is one cached (built spec, worker pool) pair, keyed by the
// assignment's job parameters: every shard of the same job hits the same
// session, so the ~1%-of-shard build cost is paid once per (job, node)
// instead of once per shard. Traced jobs additionally carry the span
// forwarder that ships their completed spans to the coordinator.
type nodeSession struct {
	sess *fleet.Session
	fwd  *spanForwarder // nil for untraced jobs
	refs int            // assignments currently executing on it
}

// NewNode returns an unconnected node; Run connects and serves.
func NewNode(cfg NodeConfig) *Node {
	return &Node{cfg: cfg.withDefaults(), sessions: map[string]*nodeSession{}}
}

// Name reports the coordinator-assigned node name ("" before Welcome).
func (n *Node) Name() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.name
}

func (n *Node) send(m any) error {
	n.wmu.Lock()
	defer n.wmu.Unlock()
	if n.conn == nil {
		return errors.New("icemesh: node not connected")
	}
	_ = n.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	buf, err := WriteMessage(n.conn, n.wbuf, m)
	n.wbuf = buf
	return err
}

// cellBatcher coalesces per-cell deliveries into CellBatch frames,
// bounded by count (BatchCells) and latency (BatchFlush). At shard size
// 1 every cell would otherwise be its own framed write plus its own
// coordinator lock acquisition; batching amortizes both without
// changing content — the coordinator merges batch entries through the
// exact same dedup path as singletons.
type cellBatcher struct {
	n    *Node
	max  int
	wait time.Duration

	mu    sync.Mutex // held across the wire write: batches leave in take order
	buf   []CellDone
	timer *time.Timer
}

// add queues one cell, flushing when the batch is full; a partial batch
// is flushed by the timer within wait.
func (b *cellBatcher) add(cd CellDone) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, cd)
	if len(b.buf) >= b.max {
		b.sendLocked()
		return
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.wait, func() { _ = b.flushThen(nil) })
	}
}

// flushThen drains the pending batch and then — atomically with the
// drain — sends m. That atomicity is the ordering seam ShardDone needs:
// frame order is write order on TCP, so the coordinator has merged every
// cell of a shard before the ShardDone that retires it arrives.
func (b *cellBatcher) flushThen(m any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sendLocked()
	if m != nil {
		return b.n.send(m)
	}
	return nil
}

// sendLocked writes the pending batch, if any. Callers hold b.mu.
func (b *cellBatcher) sendLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.buf) == 0 {
		return
	}
	batch := b.buf
	b.buf = nil
	// Send errors are deliberately dropped: a dead connection surfaces
	// in Run's read loop, and the coordinator re-queues whatever this
	// node never delivered.
	_ = b.n.send(&CellBatch{Cells: batch})
}

// spanBatchMax bounds how many completed spans coalesce into one
// SpanBatch frame; the flush timer (BatchFlush, shared with the cell
// batcher) bounds how stale a partial batch may go.
const spanBatchMax = 64

// spanForwarder batches a traced job's completed spans into SpanBatch
// frames. It is fed synchronously by the forwarding trace's event plane
// (ForwardEvents), so by the time a cell's CellDone is batched on the
// same goroutine, the cell's span is already buffered here — and
// detachFlush before ShardDone means it is already on the wire before
// the shard retires. Spans carry node trace-clock offsets; NowNS lets
// the coordinator re-base them onto the job trace's epoch.
type spanForwarder struct {
	n    *Node
	tr   *icescope.Trace // the node-side forwarding trace (NowNS source)
	root icescope.Span   // parent of this job's shard spans on the node
	max  int
	wait time.Duration

	mu     sync.Mutex // held across the wire write, like cellBatcher
	buf    []SpanRec
	timer  *time.Timer
	shards map[uint64]struct{} // this job's assignments still executing here
}

// onEvent converts completed spans (ends and instants; starts carry no
// duration) into wire records. Runs on whatever goroutine ended the
// span.
func (f *spanForwarder) onEvent(ev icescope.SpanEvent) {
	if ev.Kind == icescope.EventStart {
		return
	}
	rec := SpanRec{Name: ev.Name, StartNS: uint64(ev.Start), EndNS: uint64(ev.End)}
	for _, a := range ev.Attrs {
		wa := SpanAttr{Key: a.Key, IsStr: a.IsStr()}
		if wa.IsStr {
			wa.Str = a.Str
		} else {
			wa.Num = a.Num
		}
		rec.Attrs = append(rec.Attrs, wa)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buf = append(f.buf, rec)
	if len(f.buf) >= f.max {
		f.flushLocked()
		return
	}
	if f.timer == nil {
		f.timer = time.AfterFunc(f.wait, func() {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.flushLocked()
		})
	}
}

// addShard registers an assignment as a live locator for this job.
func (f *spanForwarder) addShard(shard uint64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.shards[shard] = struct{}{}
	f.mu.Unlock()
}

// detachFlush writes everything pending stamped with shard, then
// retires shard from the locator set — atomically, so a span frame
// never carries a locator the coordinator has already seen retired by
// the ShardDone that the caller sends right after this returns.
func (f *spanForwarder) detachFlush(shard uint64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sendLocked(shard)
	delete(f.shards, shard)
}

// drop retires shard without flushing — the cancelled path, where
// sending could race the coordinator's eviction and double-record spans
// for cells that will re-run elsewhere.
func (f *spanForwarder) drop(shard uint64) {
	if f == nil {
		return
	}
	f.mu.Lock()
	delete(f.shards, shard)
	f.mu.Unlock()
}

// flushLocked picks any still-active assignment as the frame's job
// locator; with none active the spans stay buffered for the next
// detachFlush (or are discarded with the session — the job is done
// here). Callers hold f.mu.
func (f *spanForwarder) flushLocked() {
	for shard := range f.shards {
		f.sendLocked(shard)
		return
	}
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
}

// sendLocked writes the pending spans as one frame. Callers hold f.mu.
func (f *spanForwarder) sendLocked(shard uint64) {
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	if len(f.buf) == 0 {
		return
	}
	spans := f.buf
	f.buf = nil
	// Send errors are dropped for the same reason as cell batches: a dead
	// connection surfaces in Run's read loop, and spans are observability,
	// not results — nothing re-queues them.
	_ = f.n.send(&SpanBatch{Shard: shard, NowNS: uint64(f.tr.Now()), Spans: spans})
}

// assignKey identifies the job a shard belongs to by its rebuild
// parameters — every shard of one job carries identical ones, so the key
// needs no job id on the wire. Traced and untraced jobs with identical
// parameters key separately: a traced session's spans route to its
// forwarding trace, an untraced one's must not.
func assignKey(a *Assign) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%d|%d|%d|%s", a.Scenario, a.Seed, a.Cells, int64(a.Duration), a.Codec)
	if a.Trace {
		sb.WriteString("|traced")
	}
	knobs := make([]string, 0, len(a.Knobs))
	for k := range a.Knobs {
		knobs = append(knobs, k)
	}
	sort.Strings(knobs)
	for _, k := range knobs {
		fmt.Fprintf(&sb, "|%s=%g", k, a.Knobs[k])
	}
	return sb.String()
}

// sessionFor returns the cached node session for the assignment's job,
// building spec and pool on first use, plus a release for when the
// shard finishes. Creating a session for a new job evicts idle sessions
// of old ones, so the cache holds one session per concurrently-running
// job, not one per job ever seen. Traced jobs get a forwarding trace:
// the session's fleet spans parent under its root instead of the local
// session span (the local -tracefile trace keeps dial/session and
// untraced jobs' shards; a job's cell spans live in the job's own trace
// at the coordinator — recording them twice would double memory for
// nothing), and its completed spans stream back as SpanBatch frames.
func (n *Node) sessionFor(a *Assign) (*nodeSession, func(), error) {
	key := assignKey(a)
	n.smu.Lock()
	defer n.smu.Unlock()
	ns := n.sessions[key]
	if ns == nil {
		spec, err := fleet.Build(a.Scenario, fleet.Params{
			Seed:      a.Seed,
			Cells:     a.Cells,
			Duration:  a.Duration,
			WireCodec: a.Codec,
			Knobs:     a.Knobs,
		})
		if err != nil {
			return nil, nil, err
		}
		var fwd *spanForwarder
		span := n.sess
		if a.Trace {
			name := n.Name()
			ftr := icescope.NewTrace("node " + name)
			fwd = &spanForwarder{n: n, tr: ftr, max: spanBatchMax, wait: n.cfg.BatchFlush, shards: map[uint64]struct{}{}}
			ftr.ForwardEvents(fwd.onEvent)
			fwd.root = ftr.Start(icescope.Span{}, "node "+name)
			span = fwd.root
			// Replay connection context the job missed: how expensive this
			// node's dial was, and that a session root anchors its spans.
			n.mu.Lock()
			dialMS := n.dialMS
			n.mu.Unlock()
			ftr.Instant(fwd.root, "dial coordinator", icescope.NumAttr("ms", dialMS))
			ftr.Instant(fwd.root, "session "+name, icescope.StrAttr("node", name))
		}
		runner := fleet.Runner{Workers: n.cfg.Workers, Span: span}
		if n.cfg.Obs != nil {
			runner.Obs = n.cfg.Obs.Fleet
		}
		sess, err := runner.NewSession(spec)
		if err != nil {
			return nil, nil, err
		}
		for k, old := range n.sessions {
			if old.refs == 0 && old.sess.Idle() {
				old.sess.Close()
				delete(n.sessions, k)
			}
		}
		ns = &nodeSession{sess: sess, fwd: fwd}
		n.sessions[key] = ns
	}
	// Register the assignment as a job locator before any of its spans can
	// flush; frames always carry a shard the coordinator still holds.
	ns.fwd.addShard(a.Shard)
	ns.refs++
	return ns, func() {
		n.smu.Lock()
		ns.refs--
		n.smu.Unlock()
	}, nil
}

// closeSessions tears down the session cache at connection end; every
// execute goroutine has returned by then, so all pools are idle.
func (n *Node) closeSessions() {
	n.smu.Lock()
	all := n.sessions
	n.sessions = map[string]*nodeSession{}
	n.smu.Unlock()
	for _, ns := range all {
		ns.sess.Close()
	}
}

// Run dials the coordinator (with the shared backoff+jitter retry),
// registers, and serves assignments until the connection drops or ctx
// is cancelled. A cleanly drained shutdown (Drain, then cancel) returns
// nil; anything else returns the terminating error.
func (n *Node) Run(ctx context.Context) error {
	dialT0 := time.Now()
	dialSp := n.cfg.Trace.Start(icescope.Span{}, "dial coordinator")
	var conn net.Conn
	dial := func() error {
		c, err := (&net.Dialer{Timeout: 3 * time.Second}).DialContext(ctx, "tcp", n.cfg.Coordinator)
		if err == nil {
			conn = c
		}
		return err
	}
	if err := Retry(ctx, n.cfg.DialAttempts, n.cfg.DialRetry, dial); err != nil {
		return fmt.Errorf("icemesh: dialing coordinator %s: %w", n.cfg.Coordinator, err)
	}
	defer conn.Close()
	n.wmu.Lock()
	n.conn = conn
	n.wmu.Unlock()

	if err := n.send(&Hello{Node: n.cfg.Name, Capacity: n.cfg.Workers}); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	first, err := ReadMessage(br)
	if err != nil {
		return fmt.Errorf("icemesh: awaiting welcome: %w", err)
	}
	welcome, ok := first.(*Welcome)
	if !ok {
		return fmt.Errorf("icemesh: expected welcome, got %T", first)
	}
	n.mu.Lock()
	n.name = welcome.Node
	n.dialMS = float64(time.Since(dialT0)) / float64(time.Millisecond)
	n.mu.Unlock()
	dialSp.End(icescope.StrAttr("node", welcome.Node))
	n.sess = n.cfg.Trace.Start(icescope.Span{}, "session "+welcome.Node)
	defer func() { n.sess.End(); n.sess = icescope.Span{} }()
	beat := time.Duration(welcome.HeartbeatMS) * time.Millisecond
	if beat <= 0 {
		beat = time.Second
	}
	n.cfg.Logf("icemesh: registered as %s (capacity %d, heartbeat %v)", welcome.Node, n.cfg.Workers, beat)

	// connCtx scopes the helper goroutines to THIS connection: it ends
	// when ctx does or when the read loop breaks, so a dropped connection
	// stops the heartbeats and flushes the queue instead of wedging
	// workers.Wait() — Run must return for the daemon to re-dial.
	connCtx, connCancel := context.WithCancel(ctx)
	defer connCancel()
	// ctx cancellation unblocks the reader by closing the socket.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	n.batch = &cellBatcher{n: n, max: n.cfg.BatchCells, wait: n.cfg.BatchFlush}
	defer n.closeSessions()
	var workers sync.WaitGroup
	workers.Add(1)
	go func() { // heartbeats, independent of execution
		defer workers.Done()
		t := time.NewTicker(beat)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.mu.Lock()
				hb := &Heartbeat{Inflight: n.inflight, CellsDone: n.cellsDone}
				n.mu.Unlock()
				_ = n.send(hb)
				if n.cfg.Obs != nil {
					n.cfg.Obs.Heartbeats.Inc()
				}
			case <-connCtx.Done():
				return
			}
		}
	}()

	var readErr error
	for {
		_ = conn.SetReadDeadline(time.Time{}) // liveness is the coordinator's side
		m, err := ReadMessage(br)
		if err != nil {
			readErr = err
			connCancel() // connection gone: release heartbeats, cancel running work
			break
		}
		switch v := m.(type) {
		case *Assign:
			// Assignments in the credit window run concurrently; the
			// shared per-job session bounds actual parallelism at the
			// pool's worker count, so capacity stays an honest number.
			n.mu.Lock()
			n.inflight++
			n.mu.Unlock()
			workers.Add(1)
			go func() {
				defer workers.Done()
				n.execute(connCtx, v)
				n.mu.Lock()
				n.inflight--
				n.mu.Unlock()
			}()
		case *Drain:
			n.cfg.Logf("icemesh: coordinator drain: %s", v.Reason)
		default:
			// Tolerate unknown-but-valid control messages.
		}
	}
	workers.Wait()
	_ = n.batch.flushThen(nil) // stop the flush timer; a send would fail anyway

	if ctx.Err() != nil || n.isDraining() {
		return nil // orderly shutdown
	}
	return readErr
}

// execute runs one assigned range on the job's cached session and
// streams results back through the batcher. Cell-level failures ride
// their CellDone (matching local fleet semantics, where a bad cell
// doesn't kill the ensemble); only range-level failures — an unknown
// scenario, an impossible range — fail the shard.
func (n *Node) execute(ctx context.Context, a *Assign) {
	var t0 time.Time
	if n.cfg.Obs != nil {
		t0 = time.Now()
	}
	ns, release, err := n.sessionFor(a)
	sp := icescope.Span{}
	switch {
	case ns != nil && ns.fwd != nil:
		// Traced job: the shard span rides the forwarding trace, so the
		// coordinator's job trace shows this node's shards and cells.
		sp = ns.fwd.root.Child(fmt.Sprintf("shard %d [%d,%d)", a.Shard, a.Start, a.End))
	case n.sess.Active():
		sp = n.sess.Child(fmt.Sprintf("shard %d [%d,%d)", a.Shard, a.Start, a.End))
	}
	if err == nil && a.End > ns.sess.Spec().Cells {
		err = fmt.Errorf("range [%d,%d) outside rebuilt spec (%d cells)", a.Start, a.End, ns.sess.Spec().Cells)
	}
	if err != nil {
		if release != nil {
			release()
		}
		sp.End(icescope.StrAttr("outcome", "failed"))
		if ns != nil {
			ns.fwd.detachFlush(a.Shard)
		}
		_ = n.batch.flushThen(&ShardDone{Shard: a.Shard, Err: err.Error()})
		if n.cfg.Obs != nil {
			n.cfg.Obs.ShardsFailed.Inc()
		}
		return
	}
	_, _ = ns.sess.RunRange(ctx, a.Start, a.End, func(r fleet.Result) {
		cd := CellDone{
			Shard: a.Shard, Index: r.Cell.Index, Seed: r.Cell.Seed,
			Events: r.Events, WireBytes: r.WireBytes, WireEncodeNS: r.WireEncodeNS,
			Metrics: r.Metrics,
		}
		if r.Err != nil {
			cd.Err = r.Err.Error()
		}
		n.batch.add(cd)
		n.mu.Lock()
		n.cellsDone++
		n.mu.Unlock()
		if n.cfg.Obs != nil {
			n.cfg.Obs.CellsDone.Inc()
		}
	})
	release()
	if ctx.Err() != nil {
		// Connection teardown cancelled the range mid-dispatch: cells may
		// have been skipped, so a clean ShardDone here could race ahead of
		// the coordinator's eviction and retire the shard with holes in
		// it. Send nothing — eviction re-queues everything we held, and
		// any cells we did deliver are deduplicated on the re-run. Spans
		// are dropped for the same reason: the re-run records its own.
		sp.End(icescope.StrAttr("outcome", "cancelled"))
		ns.fwd.drop(a.Shard)
		return
	}
	// End the shard span (publishing its event), flush the spans it and
	// its cells produced while this locator is still live, and only then
	// retire the shard. Frame order is write order on TCP, so the
	// coordinator injects every span of a shard before the ShardDone —
	// and before the job can finish — arrives.
	sp.End(icescope.StrAttr("outcome", "done"), icescope.IntAttr("cells", a.End-a.Start))
	ns.fwd.detachFlush(a.Shard)
	_ = n.batch.flushThen(&ShardDone{Shard: a.Shard})
	if n.cfg.Obs != nil {
		n.cfg.Obs.ShardsDone.Inc()
		n.cfg.Obs.ShardSeconds.Observe(time.Since(t0).Seconds())
	}
}

func (n *Node) isDraining() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.draining
}

// Drain is the node's graceful-shutdown handshake: announce the drain
// (the coordinator assigns nothing more), finish everything queued and
// executing, and return once idle — or with ctx's error at the
// deadline, leaving stragglers to the coordinator's re-assignment.
func (n *Node) Drain(ctx context.Context) error {
	n.mu.Lock()
	already := n.draining
	n.draining = true
	n.mu.Unlock()
	if !already {
		_ = n.send(&Drain{Reason: "node draining"})
	}
	for {
		n.mu.Lock()
		idle := n.inflight == 0
		n.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("icemesh: drain deadline: %w", ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
