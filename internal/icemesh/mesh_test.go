package icemesh

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/sim"
)

// The kill test needs cells that provably straddle the node loss: a
// registered scenario whose cells all block on a per-ensemble gate, so
// the test can wedge both nodes mid-shard, kill one, and only then let
// the fleet drain.
var meshGates sync.Map // base seed -> chan struct{}

var killSeeds atomic.Int64 // unique gate seeds across -count=N reruns

func meshGate(seed int64) chan struct{} {
	ch, _ := meshGates.LoadOrStore(seed, make(chan struct{}))
	return ch.(chan struct{})
}

func init() {
	fleet.Register("mesh-gated", func(p fleet.Params) fleet.Spec {
		gate := meshGate(p.Seed)
		return fleet.Spec{
			Name:  "mesh-gated",
			Seed:  p.Seed,
			Cells: p.Cells,
			Run: func(c fleet.Cell) (fleet.Metrics, error) {
				<-gate
				return fleet.Metrics{"value": float64(c.Index)*10 + float64(p.Seed)}, nil
			},
		}
	})
}

// startMesh brings up a coordinator plus n in-process nodes on a random
// TCP port and waits for registration. Returned cancels kill individual
// nodes (the node-loss lever); cleanup tears everything down.
func startMesh(t *testing.T, cfg Config, n int, workers int) (*Coordinator, []context.CancelFunc) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	coord := NewCoordinator(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	t.Cleanup(func() { ln.Close(); coord.Close() })

	cancels := make([]context.CancelFunc, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		t.Cleanup(cancel)
		node := NewNode(NodeConfig{
			Coordinator: ln.Addr().String(),
			Name:        fmt.Sprintf("worker-%c", 'a'+i),
			Workers:     workers,
			Logf:        t.Logf,
		})
		go func() {
			if err := node.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("node: %v", err)
			}
		}()
	}
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := coord.WaitForNodes(waitCtx, n); err != nil {
		t.Fatal(err)
	}
	return coord, cancels
}

func summarize(results []fleet.Result) string {
	return fleet.Reduce(results).String()
}

// The load-bearing guarantee, one level up: a real scenario ensemble
// reduced from a 2-node mesh is byte-identical to the same ensemble run
// locally, at several shard granularities, and per-cell results match
// index for index.
func TestMeshRunMatchesLocalByteIdentical(t *testing.T) {
	for _, shardCells := range []int{1, 3, 64} {
		t.Run(fmt.Sprintf("shard=%d", shardCells), func(t *testing.T) {
			coord, _ := startMesh(t, Config{ShardCells: shardCells}, 2, 2)

			spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
				Seed: 42, Cells: 7, Knobs: map[string]float64{"requests": 6},
			})
			if err != nil {
				t.Fatal(err)
			}
			local, err := fleet.Runner{Workers: 4}.Run(spec)
			if err != nil {
				t.Fatal(err)
			}

			var streamed atomic.Int64
			mesh, err := fleet.Runner{Workers: 4, Engine: coord}.RunContext(
				context.Background(), spec, func(fleet.Result) { streamed.Add(1) })
			if err != nil {
				t.Fatal(err)
			}
			if got, want := summarize(mesh), summarize(local); got != want {
				t.Fatalf("mesh table differs from local:\n%s\nvs\n%s", got, want)
			}
			if int(streamed.Load()) != len(local) {
				t.Fatalf("streamed %d cells, want %d", streamed.Load(), len(local))
			}
			for i := range local {
				if mesh[i].Cell != local[i].Cell || mesh[i].Events != local[i].Events {
					t.Fatalf("cell %d differs: %+v vs %+v", i, mesh[i], local[i])
				}
			}
		})
	}
}

// Killing a node mid-job re-assigns its shards to the survivor and the
// reduced table is still byte-identical to a local run — the failure
// half of the determinism-across-nodes contract.
func TestMeshNodeKillMidJobStillByteIdentical(t *testing.T) {
	// A fresh seed per invocation keeps the gate unopened under -count=N
	// (gates are per-seed and stay closed only until their first test).
	seed := 9000 + killSeeds.Add(1)
	const cells = 8
	coord, cancels := startMesh(t, Config{ShardCells: 1, Heartbeat: 50 * time.Millisecond}, 2, 1)

	spec, err := fleet.Build("mesh-gated", fleet.Params{Seed: seed, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}

	type meshOut struct {
		res []fleet.Result
		err error
	}
	done := make(chan meshOut, 1)
	go func() {
		res, err := fleet.Runner{Workers: 4, Engine: coord}.RunContext(context.Background(), spec, nil)
		done <- meshOut{res, err}
	}()

	// Wait until both nodes hold work — every cell is its own shard and
	// all cells are gated, so both nodes are provably mid-shard here.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		busy := 0
		for _, n := range coord.nodes {
			if len(n.inflight) > 0 {
				busy++
			}
		}
		coord.mu.Unlock()
		if busy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes never picked up shards")
		}
		time.Sleep(time.Millisecond)
	}

	cancels[0]() // kill worker-a: its conn drops, its shards must re-assign
	deadline = time.Now().Add(10 * time.Second)
	for coord.NodeCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("killed node never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	close(meshGate(seed)) // open the floodgates; the survivor drains everything

	out := <-done
	if out.err != nil {
		t.Fatalf("mesh run after node kill: %v", out.err)
	}
	if coord.met.shardRetries.Value() == 0 {
		t.Fatal("no shard was re-assigned, the kill tested nothing")
	}

	local, err := fleet.Runner{Workers: 4}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summarize(out.res), summarize(local); got != want {
		t.Fatalf("post-kill mesh table differs from local:\n%s\nvs\n%s", got, want)
	}
}

// A shard that blows the coordinator's deadline on a live-but-wedged
// node is re-assigned — and the result still matches a local run even
// when the wedged node eventually finishes too (first delivery wins,
// both copies identical by determinism).
func TestShardDeadlineReassignsFromWedgedNode(t *testing.T) {
	seed := 9000 + killSeeds.Add(1)
	coord, _ := startMesh(t, Config{
		ShardCells:    1,
		ShardDeadline: 30 * time.Millisecond,
		Heartbeat:     20 * time.Millisecond,
	}, 2, 1)

	spec, err := fleet.Build("mesh-gated", fleet.Params{Seed: seed, Cells: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []fleet.Result, 1)
	go func() {
		res, err := fleet.Runner{Engine: coord}.RunContext(context.Background(), spec, nil)
		if err != nil {
			t.Errorf("mesh run: %v", err)
		}
		done <- res
	}()

	// The one shard is gated on whichever node got it; wait for the
	// deadline to bounce it to the other node.
	deadline := time.Now().Add(10 * time.Second)
	for coord.met.shardRetries.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shard deadline never fired")
		}
		time.Sleep(time.Millisecond)
	}
	close(meshGate(seed)) // both assignees finish; exactly one delivery counts

	res := <-done
	local, err := fleet.Runner{}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := summarize(res), summarize(local); got != want {
		t.Fatalf("post-deadline mesh table differs:\n%s\nvs\n%s", got, want)
	}
}

// A mesh with no workers rejects jobs instead of hanging, and a spec
// without Build provenance falls back to local execution even when an
// engine is installed.
func TestMeshNoNodesAndLocalFallback(t *testing.T) {
	coord := NewCoordinator(Config{Logf: t.Logf})
	t.Cleanup(coord.Close)

	spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
		Seed: 1, Cells: 2, Knobs: map[string]float64{"requests": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = fleet.Runner{Engine: coord}.RunContext(context.Background(), spec, nil)
	if err == nil || !strings.Contains(err.Error(), "no live worker nodes") {
		t.Fatalf("no-nodes run err = %v, want ErrNoNodes", err)
	}

	// Hand-built specs carry no provenance; the engine must be bypassed.
	handBuilt := fleet.Spec{
		Name: "hand-built", Seed: 5, Cells: 3,
		Run: func(c fleet.Cell) (fleet.Metrics, error) {
			return fleet.Metrics{"seed": float64(c.Seed)}, nil
		},
	}
	res, err := fleet.Runner{Engine: coord}.RunContext(context.Background(), handBuilt, nil)
	if err != nil {
		t.Fatalf("local fallback: %v", err)
	}
	if len(res) != 3 || res[0].Metrics["seed"] != float64(sim.SubSeed(5, "hand-built", 0)) {
		t.Fatalf("local fallback results wrong: %+v", res)
	}
}

// The icenode daemon's SIGTERM sequence: Drain returns once idle, and a
// drained node's Run exits nil on cancellation — the "exit 0" property.
func TestNodeDrainExitsClean(t *testing.T) {
	coord := NewCoordinator(Config{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	t.Cleanup(func() { ln.Close(); coord.Close() })

	node := NewNode(NodeConfig{Coordinator: ln.Addr().String(), Workers: 2, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	runErr := make(chan error, 1)
	go func() { runErr <- node.Run(ctx) }()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := coord.WaitForNodes(waitCtx, 1); err != nil {
		t.Fatal(err)
	}

	spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
		Seed: 2, Cells: 2, Knobs: map[string]float64{"requests": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (fleet.Runner{Workers: 2, Engine: coord}).RunContext(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}

	if err := node.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("drained node Run = %v, want nil (exit 0)", err)
	}

	// A drained mesh has no assignable workers left.
	if _, err := (fleet.Runner{Workers: 2, Engine: coord}).RunContext(context.Background(), spec, nil); err == nil {
		t.Fatal("job ran on a fully drained mesh")
	}
}

// A node whose coordinator connection drops must return from Run (so
// the daemon's loop can re-dial) — the heartbeat goroutine must not
// keep Run wedged on a dead socket.
func TestNodeRunReturnsWhenCoordinatorDrops(t *testing.T) {
	coord := NewCoordinator(Config{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	t.Cleanup(func() { ln.Close(); coord.Close() })

	node := NewNode(NodeConfig{Coordinator: ln.Addr().String(), Workers: 1, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	runErr := make(chan error, 1)
	go func() { runErr <- node.Run(ctx) }()
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if err := coord.WaitForNodes(waitCtx, 1); err != nil {
		t.Fatal(err)
	}

	coord.mu.Lock()
	for _, n := range coord.nodes {
		n.conn.Close() // the coordinator side drops the connection
	}
	coord.mu.Unlock()

	select {
	case err := <-runErr:
		if err == nil {
			t.Fatal("Run returned nil for a non-drained connection drop")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run wedged after the coordinator dropped the connection")
	}
}

// Node drain: a draining node finishes in-flight work, receives nothing
// new, and jobs submitted afterwards run entirely on the remaining node.
func TestMeshNodeDrainHandshake(t *testing.T) {
	coord, _ := startMesh(t, Config{ShardCells: 2}, 2, 1)

	spec, err := fleet.Build(fleet.ScenarioXRayVentSync, fleet.Params{
		Seed: 3, Cells: 4, Knobs: map[string]float64{"requests": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := fleet.Runner{Workers: 2, Engine: coord}
	if _, err := runner.RunContext(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}

	// Drain one node directly through the coordinator's registry (the
	// node-side Drain API is exercised by the icenode daemon test).
	coord.mu.Lock()
	var names []string
	for name := range coord.nodes {
		names = append(names, name)
	}
	var drained string
	for _, name := range names {
		if drained == "" || name < drained {
			drained = name
		}
	}
	coord.nodes[drained].draining = true
	c0 := coord.nodes[drained].cellsDone
	coord.mu.Unlock()

	if _, err := runner.RunContext(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	coord.mu.Lock()
	after := coord.nodes[drained].cellsDone
	coord.mu.Unlock()
	if after != c0 {
		t.Fatalf("draining node executed %d new cells", after-c0)
	}
}
