package control

import (
	"errors"
	"math"
)

// Candidate pairs a plant hypothesis with the controller that would be
// used if that hypothesis were true (certainty equivalence). The plant
// hypothesis is first-order, y' = (-y + Gain*u)/Tau, optionally cascaded
// with a second lag Tau2 (drug-effect dynamics are two-lag: distribution
// then effect-site equilibration; estimators sharing that structure
// identify the patient correctly where a single lag systematically
// favours low-gain hypotheses during the S-shaped onset).
type Candidate struct {
	Name string
	Gain float64 // steady-state output per unit input
	Tau  float64 // first time constant, seconds
	Tau2 float64 // optional second time constant, seconds (0 = first-order)
	Ctrl Controller
}

// SupervisorParams tune the switching logic.
type SupervisorParams struct {
	// Forgetting is the exponential forgetting factor lambda in (0,1];
	// effective memory is ~1/(1-lambda) steps.
	Forgetting float64
	// DwellSeconds is the minimum time between switches — the key
	// stability mechanism of supervisory control: switching too fast can
	// destabilize even when every candidate controller is stabilizing.
	DwellSeconds float64
	// Hysteresis requires the challenger's monitor signal to undercut the
	// incumbent's by this relative margin before a switch.
	Hysteresis float64
}

// DefaultSupervisorParams returns conservative switching behaviour.
func DefaultSupervisorParams() SupervisorParams {
	return SupervisorParams{Forgetting: 0.995, DwellSeconds: 120, Hysteresis: 0.1}
}

// Validate reports an error for unusable parameters.
func (p SupervisorParams) Validate() error {
	if p.Forgetting <= 0 || p.Forgetting > 1 {
		return errors.New("control: forgetting factor must lie in (0,1]")
	}
	if p.DwellSeconds < 0 {
		return errors.New("control: negative dwell time")
	}
	if p.Hysteresis < 0 {
		return errors.New("control: negative hysteresis")
	}
	return nil
}

type candidateState struct {
	c       Candidate
	x       float64 // first-lag state
	yhat    float64 // estimator output (second-lag state, or = x when Tau2 == 0)
	monitor float64 // exponentially forgotten squared prediction error
}

// Supervisor is the supervisory adaptive controller: it runs one estimator
// per candidate, monitors their prediction errors, and routes control to
// the candidate currently explaining the patient best, subject to dwell
// time and hysteresis.
type Supervisor struct {
	p          SupervisorParams
	cands      []candidateState
	active     int
	sinceSwith float64 // seconds since the last switch
	lastU      float64
	Switches   uint64 // total switch count, for experiments
}

// NewSupervisor builds the supervisor. At least one candidate is required;
// the first is the initial incumbent.
func NewSupervisor(p SupervisorParams, cands []Candidate) (*Supervisor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, errors.New("control: supervisor needs at least one candidate")
	}
	s := &Supervisor{p: p, sinceSwith: p.DwellSeconds}
	for _, c := range cands {
		if c.Gain <= 0 || c.Tau <= 0 || c.Ctrl == nil {
			return nil, errors.New("control: candidate needs positive gain, tau and a controller")
		}
		if c.Tau2 < 0 {
			return nil, errors.New("control: negative second time constant")
		}
		s.cands = append(s.cands, candidateState{c: c})
	}
	return s, nil
}

// MustSupervisor is NewSupervisor for known-good inputs.
func MustSupervisor(p SupervisorParams, cands []Candidate) *Supervisor {
	s, err := NewSupervisor(p, cands)
	if err != nil {
		panic(err)
	}
	return s
}

// Active returns the incumbent candidate's name.
func (s *Supervisor) Active() string { return s.cands[s.active].c.Name }

// MonitorSignals returns each candidate's current monitor value, keyed by
// name (diagnostics and tests).
func (s *Supervisor) MonitorSignals() map[string]float64 {
	out := make(map[string]float64, len(s.cands))
	for _, cs := range s.cands {
		out[cs.c.Name] = cs.monitor
	}
	return out
}

// Update implements Controller: it propagates every estimator with the
// previously applied input, updates monitors, possibly switches, and
// returns the incumbent controller's output.
func (s *Supervisor) Update(setpoint, measured, dt float64) float64 {
	if dt > 0 {
		for i := range s.cands {
			cs := &s.cands[i]
			// Exact first-order steps under zero-order-hold input.
			alpha := math.Exp(-dt / cs.c.Tau)
			cs.x = cs.x*alpha + cs.c.Gain*s.lastU*(1-alpha)
			if cs.c.Tau2 > 0 {
				beta := math.Exp(-dt / cs.c.Tau2)
				cs.yhat = cs.yhat*beta + cs.x*(1-beta)
			} else {
				cs.yhat = cs.x
			}
			e := cs.yhat - measured
			cs.monitor = s.p.Forgetting*cs.monitor + e*e*dt
		}
		s.sinceSwith += dt
		s.maybeSwitch()
	}
	u := s.cands[s.active].c.Ctrl.Update(setpoint, measured, dt)
	s.lastU = u
	return u
}

func (s *Supervisor) maybeSwitch() {
	if s.sinceSwith < s.p.DwellSeconds {
		return
	}
	best := s.active
	for i := range s.cands {
		if s.cands[i].monitor < s.cands[best].monitor {
			best = i
		}
	}
	if best == s.active {
		return
	}
	if s.cands[best].monitor*(1+s.p.Hysteresis) >= s.cands[s.active].monitor {
		return // challenger not convincingly better
	}
	// Hand over: the new controller starts fresh to avoid inheriting a
	// wound-up integrator tuned for a different plant.
	s.cands[best].c.Ctrl.Reset()
	s.active = best
	s.sinceSwith = 0
	s.Switches++
}

// Reset implements Controller.
func (s *Supervisor) Reset() {
	for i := range s.cands {
		s.cands[i].x = 0
		s.cands[i].yhat = 0
		s.cands[i].monitor = 0
		s.cands[i].c.Ctrl.Reset()
	}
	s.active = 0
	s.lastU = 0
	s.sinceSwith = s.p.DwellSeconds
}

// TunePIDFor returns certainty-equivalence PID gains for a first-order
// plant (gain g, time constant tau) using a lambda-tuning rule with the
// closed-loop constant set to tau/2, bounded by the actuator range.
func TunePIDFor(g, tau, outMin, outMax float64) PIDParams {
	lambda := tau / 2
	kp := tau / (g * lambda)
	ki := kp / tau
	return PIDParams{Kp: kp, Ki: ki, Kd: 0, OutMin: outMin, OutMax: outMax, DerivFilter: 1}
}
