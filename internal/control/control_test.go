package control

import (
	"math"
	"testing"
	"testing/quick"
)

// firstOrderPlant simulates y' = (-y + g*u)/tau.
type firstOrderPlant struct {
	g, tau, y float64
}

func (p *firstOrderPlant) step(u, dt float64) float64 {
	alpha := math.Exp(-dt / p.tau)
	p.y = p.y*alpha + p.g*u*(1-alpha)
	return p.y
}

func TestPIDValidate(t *testing.T) {
	bad := []PIDParams{
		{Kp: 1, OutMin: 1, OutMax: 0, DerivFilter: 1},
		{Kp: -1, OutMin: 0, OutMax: 1, DerivFilter: 1},
		{Kp: 1, OutMin: 0, OutMax: 1, DerivFilter: 0},
		{Kp: 1, OutMin: 0, OutMax: 1, DerivFilter: 1.5},
	}
	for i, p := range bad {
		if _, err := NewPID(p); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestPIDConvergesOnFirstOrderPlant(t *testing.T) {
	plant := &firstOrderPlant{g: 2, tau: 60}
	pid := MustPID(TunePIDFor(plant.g, plant.tau, 0, 10))
	y := 0.0
	const dt = 1.0
	for i := 0; i < 1200; i++ {
		u := pid.Update(1.0, y, dt)
		y = plant.step(u, dt)
	}
	if math.Abs(y-1.0) > 0.02 {
		t.Fatalf("PID settled at %f, want 1.0", y)
	}
}

func TestPIDOutputClamped(t *testing.T) {
	pid := MustPID(PIDParams{Kp: 100, Ki: 10, OutMin: 0, OutMax: 5, DerivFilter: 1})
	for i := 0; i < 100; i++ {
		u := pid.Update(1000, 0, 1)
		if u < 0 || u > 5 {
			t.Fatalf("output %f outside [0,5]", u)
		}
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Drive into deep saturation, then reverse the error; a wound-up
	// integrator would keep the output pinned high for a long time.
	pid := MustPID(PIDParams{Kp: 1, Ki: 0.5, OutMin: 0, OutMax: 2, DerivFilter: 1})
	for i := 0; i < 500; i++ {
		pid.Update(10, 0, 1) // impossible setpoint: saturated high
	}
	// Error flips sign: output should unwind within a few steps.
	steps := 0
	for ; steps < 20; steps++ {
		if pid.Update(0, 10, 1) <= 0 {
			break
		}
	}
	if steps >= 20 {
		t.Fatalf("anti-windup failed: output still high after %d reversed steps", steps)
	}
}

func TestPIDZeroDTDoesNotDivide(t *testing.T) {
	pid := MustPID(PIDParams{Kp: 1, Ki: 1, Kd: 1, OutMin: -1, OutMax: 1, DerivFilter: 0.5})
	pid.Update(1, 0, 1)
	got := pid.Update(1, 0, 0) // must not NaN/panic
	if math.IsNaN(got) {
		t.Fatal("NaN on zero dt")
	}
}

func TestPIDReset(t *testing.T) {
	pid := MustPID(PIDParams{Kp: 1, Ki: 1, OutMin: -10, OutMax: 10, DerivFilter: 1})
	for i := 0; i < 10; i++ {
		pid.Update(1, 0, 1)
	}
	pid.Reset()
	if got := pid.Update(0, 0, 1); got != 0 {
		t.Fatalf("output after reset with zero error = %f, want 0", got)
	}
}

func TestBangBangHysteresis(t *testing.T) {
	bb := &BangBang{High: 1, Low: 0, Band: 0.5}
	if got := bb.Update(10, 0, 1); got != 1 {
		t.Fatalf("below band: %f, want High", got)
	}
	if got := bb.Update(10, 10.1, 1); got != 1 {
		t.Fatalf("inside band should hold previous state: %f", got)
	}
	if got := bb.Update(10, 11, 1); got != 0 {
		t.Fatalf("above band: %f, want Low", got)
	}
	if got := bb.Update(10, 9.9, 1); got != 0 {
		t.Fatalf("inside band after off: %f, want Low (hysteresis)", got)
	}
	bb.Reset()
	if bb.on {
		t.Fatal("reset failed")
	}
}

func candidateSet(outMax float64) []Candidate {
	mk := func(name string, g, tau float64) Candidate {
		return Candidate{Name: name, Gain: g, Tau: tau, Ctrl: MustPID(TunePIDFor(g, tau, 0, outMax))}
	}
	return []Candidate{
		mk("insensitive", 0.5, 60),
		mk("nominal", 2, 60),
		mk("sensitive", 8, 60),
	}
}

func TestSupervisorValidation(t *testing.T) {
	if _, err := NewSupervisor(DefaultSupervisorParams(), nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	bad := DefaultSupervisorParams()
	bad.Forgetting = 0
	if _, err := NewSupervisor(bad, candidateSet(10)); err == nil {
		t.Fatal("bad forgetting accepted")
	}
	if _, err := NewSupervisor(DefaultSupervisorParams(), []Candidate{{Name: "x", Gain: 0, Tau: 1, Ctrl: &BangBang{}}}); err == nil {
		t.Fatal("zero-gain candidate accepted")
	}
}

func TestSupervisorIdentifiesTruePlant(t *testing.T) {
	for _, tc := range []struct {
		plantGain float64
		want      string
	}{
		{0.5, "insensitive"}, {2, "nominal"}, {8, "sensitive"},
	} {
		sup := MustSupervisor(SupervisorParams{Forgetting: 0.99, DwellSeconds: 30, Hysteresis: 0.05}, candidateSet(10))
		plant := &firstOrderPlant{g: tc.plantGain, tau: 60}
		y := 0.0
		for i := 0; i < 3600; i++ {
			u := sup.Update(1.0, y, 1)
			y = plant.step(u, 1)
		}
		if got := sup.Active(); got != tc.want {
			t.Fatalf("plant gain %f: active = %q (monitors %v), want %q",
				tc.plantGain, got, sup.MonitorSignals(), tc.want)
		}
	}
}

func TestSupervisorOutperformsMismatchedPID(t *testing.T) {
	// Fixed PID tuned for the nominal gain applied to a highly sensitive
	// plant overshoots; the supervisor switches to the sensitive candidate
	// and keeps the overshoot bounded.
	const plantGain, tau = 8.0, 60.0
	run := func(c Controller) (maxY float64) {
		plant := &firstOrderPlant{g: plantGain, tau: tau}
		y := 0.0
		for i := 0; i < 3600; i++ {
			u := c.Update(1.0, y, 1)
			y = plant.step(u, 1)
			if y > maxY {
				maxY = y
			}
		}
		return maxY
	}
	fixed := run(MustPID(TunePIDFor(2, tau, 0, 10))) // tuned for nominal
	adaptive := run(MustSupervisor(SupervisorParams{Forgetting: 0.99, DwellSeconds: 30, Hysteresis: 0.05}, candidateSet(10)))
	if adaptive >= fixed {
		t.Fatalf("supervisor overshoot %f not better than fixed PID %f", adaptive, fixed)
	}
	if adaptive > 2.0 {
		t.Fatalf("supervisor overshoot %f exceeds 2x setpoint", adaptive)
	}
}

func TestSupervisorDwellTimeLimitsSwitchRate(t *testing.T) {
	sup := MustSupervisor(SupervisorParams{Forgetting: 0.9, DwellSeconds: 100, Hysteresis: 0}, candidateSet(10))
	plant := &firstOrderPlant{g: 3, tau: 60}
	y := 0.0
	for i := 0; i < 1000; i++ {
		u := sup.Update(1.0, y, 1)
		y = plant.step(u, 1)
	}
	// With 100 s dwell over 1000 s, at most 10 switches are possible.
	if sup.Switches > 10 {
		t.Fatalf("switches = %d, dwell time not enforced", sup.Switches)
	}
}

func TestSupervisorReset(t *testing.T) {
	sup := MustSupervisor(DefaultSupervisorParams(), candidateSet(10))
	plant := &firstOrderPlant{g: 8, tau: 60}
	y := 0.0
	for i := 0; i < 600; i++ {
		u := sup.Update(1.0, y, 1)
		y = plant.step(u, 1)
	}
	sup.Reset()
	if sup.Active() != "insensitive" { // first candidate
		t.Fatalf("active after reset = %q, want first candidate", sup.Active())
	}
	for _, m := range sup.MonitorSignals() {
		if m != 0 {
			t.Fatalf("monitor not cleared: %v", sup.MonitorSignals())
		}
	}
}

// Property: supervisor output always respects the candidates' actuator
// bounds, for any plant in a broad random family.
func TestSupervisorOutputBoundsProperty(t *testing.T) {
	f := func(gainSeed, tauSeed uint8) bool {
		g := 0.2 + float64(gainSeed%100)/10 // 0.2..10.1
		tau := 10 + float64(tauSeed%200)    // 10..209 s
		sup := MustSupervisor(SupervisorParams{Forgetting: 0.99, DwellSeconds: 20, Hysteresis: 0.05}, candidateSet(5))
		plant := &firstOrderPlant{g: g, tau: tau}
		y := 0.0
		for i := 0; i < 600; i++ {
			u := sup.Update(1.0, y, 1)
			if u < 0 || u > 5 || math.IsNaN(u) {
				return false
			}
			y = plant.step(u, 1)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTunePIDForShape(t *testing.T) {
	p := TunePIDFor(2, 60, 0, 10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Higher plant gain should yield gentler controller gains.
	q := TunePIDFor(8, 60, 0, 10)
	if q.Kp >= p.Kp {
		t.Fatalf("Kp did not shrink with plant gain: %f vs %f", q.Kp, p.Kp)
	}
}
