// Package control provides the control-theoretic substrate for the
// paper's physiological closed-loop challenge (g): classical PID and
// bang-bang controllers, and a Morse-style supervisory adaptive controller
// (multi-estimator, monitor, and dwell-time switching logic) designed for
// the high parametric uncertainty of drug-response dynamics — the paper
// cites exactly this family of methods [17].
package control

import "errors"

// Controller maps (setpoint, measurement) to an actuator output each step.
type Controller interface {
	// Update advances the controller by dtSeconds and returns the output.
	Update(setpoint, measured, dtSeconds float64) float64
	// Reset clears internal state (integrators, filters).
	Reset()
}

// PIDParams tune a PID controller.
type PIDParams struct {
	Kp, Ki, Kd  float64
	OutMin      float64 // actuator lower bound
	OutMax      float64 // actuator upper bound
	DerivFilter float64 // derivative low-pass coefficient in (0,1]; 1 = unfiltered
}

// Validate reports an error for unusable gains.
func (p PIDParams) Validate() error {
	if p.OutMax <= p.OutMin {
		return errors.New("control: OutMax must exceed OutMin")
	}
	if p.Kp < 0 || p.Ki < 0 || p.Kd < 0 {
		return errors.New("control: negative PID gains")
	}
	if p.DerivFilter <= 0 || p.DerivFilter > 1 {
		return errors.New("control: DerivFilter must lie in (0,1]")
	}
	return nil
}

// PID is a textbook PID with clamped output and conditional-integration
// anti-windup: the integrator freezes while the output saturates in the
// direction that would deepen saturation.
type PID struct {
	p        PIDParams
	integral float64
	prevErr  float64
	dFilt    float64
	primed   bool
}

// NewPID returns a PID controller.
func NewPID(p PIDParams) (*PID, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &PID{p: p}, nil
}

// MustPID is NewPID for known-good parameters.
func MustPID(p PIDParams) *PID {
	c, err := NewPID(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Update implements Controller.
func (c *PID) Update(setpoint, measured, dt float64) float64 {
	if dt <= 0 {
		return c.clamp(c.raw())
	}
	err := setpoint - measured
	var deriv float64
	if c.primed {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.primed = true
	c.dFilt += c.p.DerivFilter * (deriv - c.dFilt)

	// Tentative integral; commit only if it does not deepen saturation.
	newIntegral := c.integral + err*dt
	out := c.p.Kp*err + c.p.Ki*newIntegral + c.p.Kd*c.dFilt
	if (out > c.p.OutMax && err > 0) || (out < c.p.OutMin && err < 0) {
		// Anti-windup: hold the integrator.
		out = c.p.Kp*err + c.p.Ki*c.integral + c.p.Kd*c.dFilt
	} else {
		c.integral = newIntegral
	}
	return c.clamp(out)
}

func (c *PID) raw() float64 {
	return c.p.Kp*c.prevErr + c.p.Ki*c.integral + c.p.Kd*c.dFilt
}

func (c *PID) clamp(v float64) float64 {
	if v < c.p.OutMin {
		return c.p.OutMin
	}
	if v > c.p.OutMax {
		return c.p.OutMax
	}
	return v
}

// Reset implements Controller.
func (c *PID) Reset() {
	c.integral, c.prevErr, c.dFilt, c.primed = 0, 0, 0, false
}

// BangBang is the simplest safety controller: full output below the
// setpoint band, zero above it. Used as the PCA interlock baseline.
type BangBang struct {
	High, Low float64 // output levels
	Band      float64 // hysteresis half-width around the setpoint
	on        bool
}

// Update implements Controller.
func (c *BangBang) Update(setpoint, measured, dt float64) float64 {
	switch {
	case measured < setpoint-c.Band:
		c.on = true
	case measured > setpoint+c.Band:
		c.on = false
	}
	if c.on {
		return c.High
	}
	return c.Low
}

// Reset implements Controller.
func (c *BangBang) Reset() { c.on = false }
