package mednet

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func testNet(t *testing.T, def LinkParams) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.NewKernel()
	n, err := New(k, sim.NewRNG(1), def)
	if err != nil {
		t.Fatal(err)
	}
	return k, n
}

func TestDeliveryWithLatency(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: 10 * time.Millisecond})
	var got []Message
	var at sim.Time
	n.Register("b", func(m Message) { got = append(got, m); at = k.Now() })
	k.At(0, func() { n.Send("a", "b", "obs", []byte("hi")) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if at != 10*sim.Millisecond {
		t.Fatalf("delivered at %v, want 10ms", at)
	}
	if got[0].From != "a" || got[0].Kind != "obs" || string(got[0].Payload) != "hi" {
		t.Fatalf("message corrupted: %+v", got[0])
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %v", st)
	}
}

func TestLossDropsApproximatelyAtRate(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond, LossProb: 0.3})
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	const total = 20000
	for i := 0; i < total; i++ {
		i := i
		k.At(sim.Time(i)*sim.Millisecond, func() { n.Send("a", "b", "x", nil) })
	}
	if err := k.Run(sim.Hour); err != nil {
		t.Fatal(err)
	}
	rate := 1 - float64(delivered)/total
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("observed loss %f, want ~0.3", rate)
	}
}

func TestDuplication(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond, DupProb: 1})
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	k.At(0, func() { n.Send("a", "b", "x", nil) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (always-duplicate link)", delivered)
	}
}

func TestNoRouteCounted(t *testing.T) {
	k, n := testNet(t, DefaultLink())
	k.At(0, func() { n.Send("a", "ghost", "x", nil) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if n.Stats().NoRoute != 1 {
		t.Fatalf("noroute = %d, want 1", n.Stats().NoRoute)
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	k, n := testNet(t, DefaultLink())
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	k.At(0, func() { n.Send("a", "b", "x", nil) })
	k.At(10*sim.Millisecond, func() { n.Unregister("b") })
	k.At(20*sim.Millisecond, func() { n.Send("a", "b", "x", nil) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if n.Registered("b") {
		t.Fatal("b still registered")
	}
}

func TestPerLinkOverride(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond})
	if err := n.SetLink("a", "b", LinkParams{Latency: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var abAt, baAt sim.Time
	n.Register("b", func(Message) { abAt = k.Now() })
	n.Register("a", func(Message) { baAt = k.Now() })
	k.At(0, func() {
		n.Send("a", "b", "x", nil)
		n.Send("b", "a", "x", nil)
	})
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if abAt != 100*sim.Millisecond {
		t.Fatalf("a->b at %v, want 100ms (override)", abAt)
	}
	if baAt != sim.Millisecond {
		t.Fatalf("b->a at %v, want 1ms (default)", baAt)
	}
}

func TestOutageWindowBlocksTraffic(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond})
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	if err := n.Outage("a", "b", 10*sim.Second, 20*sim.Second); err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{5 * sim.Second, 15 * sim.Second, 25 * sim.Second} {
		k.At(at, func() { n.Send("a", "b", "x", nil) })
	}
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (middle send inside outage)", delivered)
	}
	if n.Stats().Partitioned != 1 {
		t.Fatalf("partitioned = %d, want 1", n.Stats().Partitioned)
	}
}

func TestPartitionIsBidirectionalAndScoped(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond})
	got := map[string]int{}
	for _, addr := range []string{"a1", "a2", "b1"} {
		addr := addr
		n.Register(addr, func(Message) { got[addr]++ })
	}
	if err := n.Partition([]string{"a1", "a2"}, []string{"b1"}, 0, sim.Minute); err != nil {
		t.Fatal(err)
	}
	k.At(sim.Second, func() {
		n.Send("a1", "b1", "x", nil) // blocked
		n.Send("b1", "a1", "x", nil) // blocked
		n.Send("a1", "a2", "x", nil) // same side: flows
	})
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if got["b1"] != 0 || got["a1"] != 0 {
		t.Fatalf("partition leaked: %v", got)
	}
	if got["a2"] != 1 {
		t.Fatalf("intra-group traffic blocked: %v", got)
	}
}

func TestWildcardOutage(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond})
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	if err := n.Outage("*", "b", 0, sim.Minute); err != nil {
		t.Fatal(err)
	}
	k.At(sim.Second, func() { n.Send("anyone", "b", "x", nil) })
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatal("wildcard outage did not block")
	}
}

func TestIntermittentLinkSchedule(t *testing.T) {
	fs := IntermittentLink("a", "b", 0, 10*sim.Second, 2*sim.Second, sim.Second)
	if len(fs.Windows) == 0 {
		t.Fatal("empty schedule")
	}
	for _, w := range fs.Windows {
		if w.End <= w.Start || w.Loss != 1 {
			t.Fatalf("bad window %+v", w)
		}
		if w.End > 10*sim.Second {
			t.Fatalf("window %+v exceeds end", w)
		}
	}
	// Apply to a live network and verify flapping.
	k, n := testNet(t, LinkParams{Latency: time.Millisecond})
	if err := fs.Apply(n); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	// Send at 1s (up), 2.5s (down), 3.5s (up again).
	for _, at := range []sim.Time{sim.Second, 2500 * sim.Millisecond, 3500 * sim.Millisecond} {
		k.At(at, func() { n.Send("a", "b", "x", nil) })
	}
	if err := k.Run(sim.Minute); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
}

func TestLinkValidation(t *testing.T) {
	bad := []LinkParams{
		{Latency: -time.Millisecond},
		{Jitter: -time.Millisecond},
		{LossProb: 1.5},
		{DupProb: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
	k := sim.NewKernel()
	if _, err := New(k, sim.NewRNG(1), LinkParams{LossProb: 2}); err == nil {
		t.Fatal("New accepted invalid default link")
	}
}

func TestTapObservesDispositions(t *testing.T) {
	k, n := testNet(t, LinkParams{Latency: time.Millisecond, LossProb: 1})
	var dispositions []string
	n.Tap(func(_ Message, d string) { dispositions = append(dispositions, d) })
	k.At(0, func() { n.Send("a", "b", "x", nil) })
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(dispositions) != 1 || dispositions[0] != "dropped" {
		t.Fatalf("dispositions = %v", dispositions)
	}
}

// Property: messages between two live endpoints on a lossless link are
// never lost or reordered beyond what jitter allows, and latency always
// lies within [latency-jitter, latency+jitter].
func TestLatencyBoundsProperty(t *testing.T) {
	f := func(latMs, jitMs uint8) bool {
		lat := time.Duration(latMs%50+1) * time.Millisecond
		jit := time.Duration(jitMs%10) * time.Millisecond
		if jit > lat {
			jit = lat
		}
		k := sim.NewKernel()
		n := MustNew(k, sim.NewRNG(int64(latMs)*256+int64(jitMs)), LinkParams{Latency: lat, Jitter: jit})
		var times []sim.Time
		n.Register("b", func(m Message) { times = append(times, k.Now()-m.SentAt) })
		for i := 0; i < 50; i++ {
			i := i
			k.At(sim.Time(i)*sim.Second, func() { n.Send("a", "b", "x", nil) })
		}
		if err := k.Run(sim.Hour); err != nil {
			return false
		}
		if len(times) != 50 {
			return false
		}
		for _, d := range times {
			if d < sim.Time(lat-jit) || d > sim.Time(lat+jit) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Sent: 1, Delivered: 1}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}
