package mednet

import (
	"errors"

	"repro/internal/sim"
)

// Outage blocks all traffic between the directed pair during [start,end).
// Use "*" as a wildcard for either side.
func (n *Network) Outage(from, to string, start, end sim.Time) error {
	return n.Degrade(from, to, start, end, 1)
}

// Degrade adds probabilistic loss to the directed pair during [start,end).
// loss stacks with (dominates over) the link's own loss probability.
func (n *Network) Degrade(from, to string, start, end sim.Time, loss float64) error {
	if end <= start {
		return errors.New("mednet: fault window must have positive length")
	}
	if loss < 0 || loss > 1 {
		return errors.New("mednet: loss outside [0,1]")
	}
	n.faults = append(n.faults, faultWindow{from: from, to: to, start: start, end: end, loss: loss})
	return nil
}

// Partition isolates two groups of endpoints from each other (both
// directions) during [start,end). Traffic within a group is unaffected.
func (n *Network) Partition(groupA, groupB []string, start, end sim.Time) error {
	if end <= start {
		return errors.New("mednet: partition window must have positive length")
	}
	for _, a := range groupA {
		for _, b := range groupB {
			n.faults = append(n.faults,
				faultWindow{from: a, to: b, start: start, end: end, loss: 1},
				faultWindow{from: b, to: a, start: start, end: end, loss: 1})
		}
	}
	return nil
}

// FaultSchedule describes a reproducible fault scenario for experiments.
type FaultSchedule struct {
	Windows []FaultSpec
}

// FaultSpec is one declarative fault entry.
type FaultSpec struct {
	From, To   string
	Start, End sim.Time
	Loss       float64
}

// Apply installs every window of the schedule on the network.
func (fs FaultSchedule) Apply(n *Network) error {
	for _, w := range fs.Windows {
		if err := n.Degrade(w.From, w.To, w.Start, w.End, w.Loss); err != nil {
			return err
		}
	}
	return nil
}

// IntermittentLink builds a schedule that flaps the directed pair: cycles
// of up time followed by total outage, from start until end.
func IntermittentLink(from, to string, start, end, up, down sim.Time) FaultSchedule {
	var fs FaultSchedule
	if up <= 0 || down <= 0 {
		return fs
	}
	for t := start + up; t < end; t += up + down {
		we := t + down
		if we > end {
			we = end
		}
		fs.Windows = append(fs.Windows, FaultSpec{From: from, To: to, Start: t, End: we, Loss: 1})
	}
	return fs
}
