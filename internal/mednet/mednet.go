// Package mednet simulates the hospital device network the paper's
// interoperability scenarios run over. It delivers opaque datagrams
// between named endpoints with configurable latency, jitter, loss,
// duplication and partitions, all on the shared virtual clock, so the
// closed-loop experiments can quantify exactly how communication faults
// erode patient safety (challenge (l), experiment E6).
package mednet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// Message is one datagram in flight.
type Message struct {
	From    string
	To      string
	Kind    string // application-level tag, for tracing
	Payload []byte
	SentAt  sim.Time

	// buf, when non-nil, is the pooled buffer backing Payload; the
	// network returns it to the pool after the receiving handler runs.
	buf *Buf
}

// Buf is a pooled, reference-counted payload buffer. Senders on a hot
// path acquire one, encode into B (typically via an append-style codec),
// and hand it to SendBuf; the network recycles it once every scheduled
// delivery of the datagram has run. This is what lets the wire stack
// publish millions of envelopes with zero steady-state allocations while
// payloads are still carried by reference (never copied) end to end.
type Buf struct {
	B    []byte
	refs int
}

// Handler receives delivered messages. Handlers run inside the simulation
// event loop; they must not block.
type Handler func(Message)

// LinkParams describe one directed link's behaviour.
type LinkParams struct {
	Latency  time.Duration // base one-way latency
	Jitter   time.Duration // uniform ±jitter added to latency
	LossProb float64       // probability a datagram is silently dropped
	DupProb  float64       // probability a datagram is delivered twice
}

// Validate reports an error for unusable parameters.
func (l LinkParams) Validate() error {
	if l.Latency < 0 || l.Jitter < 0 {
		return errors.New("mednet: negative latency or jitter")
	}
	if l.LossProb < 0 || l.LossProb > 1 {
		return errors.New("mednet: loss probability outside [0,1]")
	}
	if l.DupProb < 0 || l.DupProb > 1 {
		return errors.New("mednet: duplication probability outside [0,1]")
	}
	return nil
}

// DefaultLink returns a healthy clinical LAN profile: 2 ms ± 1 ms, no loss.
func DefaultLink() LinkParams {
	return LinkParams{Latency: 2 * time.Millisecond, Jitter: time.Millisecond}
}

// Stats accumulate per-network delivery accounting.
type Stats struct {
	Sent        uint64
	Delivered   uint64
	Dropped     uint64 // by random loss
	Duplicated  uint64
	Partitioned uint64 // dropped because a partition blocked the pair
	NoRoute     uint64 // destination not registered
	Bytes       uint64 // payload bytes offered to the wire (per send)
}

// Network is the simulated fabric. Not safe for concurrent use; the
// simulation is single-threaded by construction. Scale across patients
// comes from the fleet layer instead: each fleet cell owns a private
// Network (plus kernel, manager, and devices), so rooms parallelize
// without any locking here.
type Network struct {
	k        *sim.Kernel
	rng      *sim.RNG
	handlers map[string]Handler
	def      LinkParams
	links    map[[2]string]LinkParams
	faults   []faultWindow
	stats    Stats
	tap      func(Message, string) // optional observer: (msg, disposition)

	// pool recycles in-flight delivery slots so the healthy path — send,
	// latency, handler dispatch — schedules through the kernel's
	// closure-free API with zero allocations and no payload copy (the
	// datagram's byte slice is carried by reference end to end).
	pool []*delivery
	// bufs recycles payload buffers for SendBuf senders.
	bufs []*Buf
}

// delivery is one datagram in flight between Send and its handler.
type delivery struct {
	n   *Network
	msg Message
}

// deliverMsg lands one datagram: package-level so scheduling it through
// AtFunc never allocates a closure. The slot returns to the pool before
// the handler runs, so a handler that immediately sends reuses it.
func deliverMsg(arg any) {
	d := arg.(*delivery)
	n, msg := d.n, d.msg
	d.msg = Message{} // drop the payload reference while pooled
	n.pool = append(n.pool, d)
	h, ok := n.handlers[msg.To]
	if !ok {
		n.stats.NoRoute++
		n.observe(msg, "noroute")
		n.release(msg.buf)
		return
	}
	n.stats.Delivered++
	n.observe(msg, "delivered")
	h(msg)
	n.release(msg.buf)
}

type faultWindow struct {
	from, to   string // "*" matches any endpoint
	start, end sim.Time
	loss       float64 // additional loss during window (1 = total outage)
}

// New creates a network on the given kernel with a default link profile.
func New(k *sim.Kernel, rng *sim.RNG, def LinkParams) (*Network, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		k:        k,
		rng:      rng,
		handlers: make(map[string]Handler),
		def:      def,
		links:    make(map[[2]string]LinkParams),
	}, nil
}

// MustNew is New for known-good parameters.
func MustNew(k *sim.Kernel, rng *sim.RNG, def LinkParams) *Network {
	n, err := New(k, rng, def)
	if err != nil {
		panic(err)
	}
	return n
}

// Register attaches a handler to an address. Registering an address twice
// replaces the handler (supports device restart).
func (n *Network) Register(addr string, h Handler) {
	if addr == "" || h == nil {
		panic("mednet: empty address or nil handler")
	}
	n.handlers[addr] = h
}

// Unregister detaches an address (device unplugged or crashed).
func (n *Network) Unregister(addr string) { delete(n.handlers, addr) }

// Registered reports whether an address has a live handler.
func (n *Network) Registered(addr string) bool {
	_, ok := n.handlers[addr]
	return ok
}

// SetLink overrides the link profile for the directed pair from->to.
func (n *Network) SetLink(from, to string, p LinkParams) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.links[[2]string{from, to}] = p
	return nil
}

// SetDefaultLink replaces the default profile for unconfigured pairs.
func (n *Network) SetDefaultLink(p LinkParams) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n.def = p
	return nil
}

// Tap installs an observer invoked for every send with a disposition of
// "delivered", "dropped", "partitioned", "duplicated" or "noroute".
// Used by tests and the audit subsystem.
func (n *Network) Tap(f func(Message, string)) { n.tap = f }

// Stats returns a copy of the accounting counters.
func (n *Network) Stats() Stats { return n.stats }

// Reset clears delivery accounting for a prototype clone. Topology —
// handlers, per-pair links, fault windows — is construction-time
// configuration and is retained. Any deliveries in flight at the old
// horizon were already dropped by the owning kernel's Reset; their
// pooled slots and buffers are abandoned to the garbage collector and
// re-grown on demand, bounded by what was airborne at one horizon.
func (n *Network) Reset() { n.stats = Stats{} }

// linkFor resolves the effective parameters for a directed pair.
func (n *Network) linkFor(from, to string) LinkParams {
	if p, ok := n.links[[2]string{from, to}]; ok {
		return p
	}
	return n.def
}

// extraLoss returns the added fault-window loss for the pair at time t.
func (n *Network) extraLoss(from, to string, t sim.Time) float64 {
	loss := 0.0
	for _, w := range n.faults {
		if t < w.start || t >= w.end {
			continue
		}
		if (w.from == "*" || w.from == from) && (w.to == "*" || w.to == to) {
			if w.loss > loss {
				loss = w.loss
			}
		}
	}
	return loss
}

// Send queues a datagram. Delivery (or loss) is decided now; the handler
// runs after the sampled latency. Sending to an unregistered address is
// counted but otherwise silently ignored, as on a real datagram network.
func (n *Network) Send(from, to, kind string, payload []byte) {
	n.send(Message{From: from, To: to, Kind: kind, Payload: payload, SentAt: n.k.Now()}, nil)
}

// AcquireBuf leases a payload buffer from the network's pool. Fill B
// (append-style, starting from B[:0]) and pass the Buf to SendBuf, which
// takes ownership; acquired buffers not sent are simply garbage.
func (n *Network) AcquireBuf() *Buf {
	if last := len(n.bufs) - 1; last >= 0 {
		b := n.bufs[last]
		n.bufs = n.bufs[:last]
		return b
	}
	return &Buf{B: make([]byte, 0, 256)}
}

// SendBuf is Send for a pooled payload buffer: the datagram's payload is
// b.B, carried by reference to every scheduled delivery, and b returns
// to the pool after the last delivery's handler returns (or immediately
// when the datagram is lost). Receiving handlers must not retain the
// payload past their own return — decode synchronously, as the ICE
// endpoints do.
func (n *Network) SendBuf(from, to, kind string, b *Buf) {
	n.send(Message{From: from, To: to, Kind: kind, Payload: b.B, SentAt: n.k.Now(), buf: b}, b)
}

func (n *Network) send(msg Message, b *Buf) {
	n.stats.Sent++
	n.stats.Bytes += uint64(len(msg.Payload))

	if pl := n.extraLoss(msg.From, msg.To, n.k.Now()); pl > 0 && n.rng.Bernoulli(pl) {
		n.stats.Partitioned++
		n.observe(msg, "partitioned")
		n.discard(b)
		return
	}
	p := n.linkFor(msg.From, msg.To)
	if n.rng.Bernoulli(p.LossProb) {
		n.stats.Dropped++
		n.observe(msg, "dropped")
		n.discard(b)
		return
	}
	if b != nil {
		b.refs = 1
	}
	n.deliverAfter(msg, p)
	if n.rng.Bernoulli(p.DupProb) {
		if b != nil {
			b.refs++
		}
		n.stats.Duplicated++
		n.observe(msg, "duplicated")
		n.deliverAfter(msg, p)
	}
}

// release returns one reference; the buffer is pooled when the last
// scheduled delivery has run.
func (n *Network) release(b *Buf) {
	if b == nil {
		return
	}
	if b.refs--; b.refs <= 0 {
		b.B = b.B[:0]
		n.bufs = append(n.bufs, b)
	}
}

// discard pools a buffer whose datagram was lost before any delivery was
// scheduled.
func (n *Network) discard(b *Buf) {
	if b != nil {
		b.refs = 1
		n.release(b)
	}
}

func (n *Network) deliverAfter(msg Message, p LinkParams) {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(n.rng.Uniform(-float64(p.Jitter), float64(p.Jitter)))
	}
	if d < 0 {
		d = 0
	}
	var dv *delivery
	if last := len(n.pool) - 1; last >= 0 {
		dv = n.pool[last]
		n.pool = n.pool[:last]
	} else {
		dv = &delivery{n: n}
	}
	dv.msg = msg
	n.k.AfterFunc(d, deliverMsg, dv)
}

func (n *Network) observe(m Message, disposition string) {
	if n.tap != nil {
		n.tap(m, disposition)
	}
}

// String summarizes the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d dup=%d partitioned=%d noroute=%d",
		s.Sent, s.Delivered, s.Dropped, s.Duplicated, s.Partitioned, s.NoRoute)
}
