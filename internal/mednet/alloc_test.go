package mednet

import (
	"testing"

	"repro/internal/sim"
)

// The healthy delivery path — send, latency sample, handler dispatch —
// must run allocation-free at steady state: the in-flight slot is pooled,
// the kernel event is closure-free, and the payload is carried by
// reference (the byte slice is never copied).
func TestAllocsHealthyPathDelivery(t *testing.T) {
	if sim.RaceEnabled {
		t.Skip("allocation gates are meaningless under -race")
	}
	k := sim.NewKernel()
	n := MustNew(k, sim.NewRNG(1), DefaultLink())
	delivered := 0
	n.Register("b", func(Message) { delivered++ })
	payload := []byte("spo2=97")
	n.Send("a", "b", "obs", payload) // warm the delivery pool
	if err := k.Run(k.Now() + sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(2000, func() {
		n.Send("a", "b", "obs", payload)
		if err := k.Run(k.Now() + sim.Second); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("healthy-path delivery allocates %v/op, want 0", got)
	}
	if delivered < 2000 {
		t.Fatalf("only %d datagrams delivered", delivered)
	}
}

// The payload must arrive by reference on the healthy path: zero-copy is
// observable (and relied upon being safe because handlers run before the
// sender regains control only via the event loop).
func TestDeliveryCarriesPayloadByReference(t *testing.T) {
	k := sim.NewKernel()
	n := MustNew(k, sim.NewRNG(1), DefaultLink())
	payload := []byte("abc")
	var got []byte
	n.Register("b", func(m Message) { got = m.Payload })
	n.Send("a", "b", "x", payload)
	if err := k.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || &got[0] != &payload[0] {
		t.Fatal("payload was copied on the healthy path")
	}
}

// BenchmarkHealthyPathDelivery is the mednet half of the PR's headline:
// one op = one datagram sent, flown, and handled.
func BenchmarkHealthyPathDelivery(b *testing.B) {
	k := sim.NewKernel()
	n := MustNew(k, sim.NewRNG(1), DefaultLink())
	n.Register("b", func(Message) {})
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send("a", "b", "obs", payload)
		if err := k.Run(k.Now() + 10*sim.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "datagrams/s")
}
