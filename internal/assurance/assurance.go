// Package assurance implements the paper's challenge (n): evidence-based
// certification with Goal Structuring Notation (GSN) assurance cases and
// incremental re-certification. An assurance case is a tree of goals,
// decomposed by strategies into subgoals, ultimately supported by
// solutions (evidence artifacts: test reports, proofs, analyses). Each
// evidence item records which component version it was produced against;
// upgrading a component invalidates exactly the evidence depending on it,
// and the re-certification pass re-examines only the affected subtree —
// the incremental alternative to reconsidering "the whole assurance case
// from scratch".
package assurance

import (
	"errors"
	"fmt"
	"sort"
)

// NodeKind discriminates GSN node types.
type NodeKind int

const (
	KindGoal NodeKind = iota
	KindStrategy
	KindSolution
	KindContext
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindGoal:
		return "goal"
	case KindStrategy:
		return "strategy"
	case KindSolution:
		return "solution"
	case KindContext:
		return "context"
	default:
		return "unknown"
	}
}

// Node is one GSN element.
type Node struct {
	ID       string
	Kind     NodeKind
	Text     string
	Children []string // supported-by links (goals/strategies); empty for solutions
	// Evidence fields (solutions only):
	Component string // which component the evidence is about
	Version   string // the component version the evidence was produced against
	Valid     bool
}

// Case is an assurance case.
type Case struct {
	Root  string
	nodes map[string]*Node
	// componentVersion is the currently deployed version per component.
	componentVersion map[string]string
}

// NewCase returns an empty case with the given root goal.
func NewCase(rootID, text string) *Case {
	c := &Case{
		Root:             rootID,
		nodes:            make(map[string]*Node),
		componentVersion: make(map[string]string),
	}
	c.nodes[rootID] = &Node{ID: rootID, Kind: KindGoal, Text: text}
	return c
}

// AddGoal attaches a subgoal under a parent goal or strategy.
func (c *Case) AddGoal(parent, id, text string) error {
	return c.add(parent, &Node{ID: id, Kind: KindGoal, Text: text})
}

// AddStrategy attaches a strategy under a goal.
func (c *Case) AddStrategy(parent, id, text string) error {
	return c.add(parent, &Node{ID: id, Kind: KindStrategy, Text: text})
}

// AddEvidence attaches a solution to a goal: an evidence artifact about a
// component at a version. Fresh evidence is valid.
func (c *Case) AddEvidence(parent, id, text, component, version string) error {
	n := &Node{
		ID: id, Kind: KindSolution, Text: text,
		Component: component, Version: version, Valid: true,
	}
	if err := c.add(parent, n); err != nil {
		return err
	}
	if _, ok := c.componentVersion[component]; !ok {
		c.componentVersion[component] = version
	}
	return nil
}

// AddContext attaches context (not load-bearing for support evaluation).
func (c *Case) AddContext(parent, id, text string) error {
	return c.add(parent, &Node{ID: id, Kind: KindContext, Text: text})
}

func (c *Case) add(parent string, n *Node) error {
	p, ok := c.nodes[parent]
	if !ok {
		return fmt.Errorf("assurance: unknown parent %q", parent)
	}
	if _, dup := c.nodes[n.ID]; dup {
		return fmt.Errorf("assurance: duplicate node %q", n.ID)
	}
	switch n.Kind {
	case KindGoal:
		if p.Kind != KindGoal && p.Kind != KindStrategy {
			return fmt.Errorf("assurance: goal %q under %s", n.ID, p.Kind)
		}
	case KindStrategy, KindSolution, KindContext:
		if p.Kind != KindGoal && p.Kind != KindStrategy {
			return fmt.Errorf("assurance: %s %q under %s", n.Kind, n.ID, p.Kind)
		}
	}
	c.nodes[n.ID] = n
	p.Children = append(p.Children, n.ID)
	return nil
}

// Node fetches a node.
func (c *Case) Node(id string) (*Node, bool) {
	n, ok := c.nodes[id]
	return n, ok
}

// Size reports the node count.
func (c *Case) Size() int { return len(c.nodes) }

// Supported evaluates whether a goal is currently supported: a solution
// supports iff its evidence is valid; a strategy supports iff all its
// children support; a goal supports iff it has at least one supporting
// child (context nodes are ignored).
func (c *Case) Supported(id string) (bool, error) {
	n, ok := c.nodes[id]
	if !ok {
		return false, fmt.Errorf("assurance: unknown node %q", id)
	}
	switch n.Kind {
	case KindSolution:
		return n.Valid, nil
	case KindContext:
		return true, nil
	case KindGoal, KindStrategy:
		loadBearing := 0
		for _, ch := range n.Children {
			child := c.nodes[ch]
			if child.Kind == KindContext {
				continue
			}
			loadBearing++
			ok, err := c.Supported(ch)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return loadBearing > 0, nil
	default:
		return false, fmt.Errorf("assurance: unknown kind %d", n.Kind)
	}
}

// UpgradeComponent records a new version of a component and invalidates
// all evidence produced against older versions. It returns the IDs of the
// invalidated solutions.
func (c *Case) UpgradeComponent(component, newVersion string) []string {
	c.componentVersion[component] = newVersion
	var out []string
	for _, n := range c.nodes {
		if n.Kind == KindSolution && n.Component == component && n.Version != newVersion && n.Valid {
			n.Valid = false
			out = append(out, n.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Reexamine re-validates a solution with fresh evidence at the current
// component version (a re-run test suite, a re-checked proof).
func (c *Case) Reexamine(id string) error {
	n, ok := c.nodes[id]
	if !ok || n.Kind != KindSolution {
		return errors.New("assurance: Reexamine needs a solution node")
	}
	n.Version = c.componentVersion[n.Component]
	n.Valid = true
	return nil
}

// RecertPlan is what an incremental re-certification must do after an
// upgrade, compared against the full-review baseline.
type RecertPlan struct {
	InvalidEvidence []string // solutions needing re-examination
	AffectedGoals   []string // ancestor goals whose support is lost
	TotalEvidence   int
	TotalGoals      int
}

// PlanRecertification computes the incremental plan: which evidence is
// invalid and which goals lost support. The fraction
// len(InvalidEvidence)/TotalEvidence is experiment E8's headline metric.
func (c *Case) PlanRecertification() RecertPlan {
	var plan RecertPlan
	for _, n := range c.nodes {
		switch n.Kind {
		case KindSolution:
			plan.TotalEvidence++
			if !n.Valid {
				plan.InvalidEvidence = append(plan.InvalidEvidence, n.ID)
			}
		case KindGoal:
			plan.TotalGoals++
		}
	}
	for _, n := range c.nodes {
		if n.Kind != KindGoal {
			continue
		}
		ok, err := c.Supported(n.ID)
		if err == nil && !ok {
			plan.AffectedGoals = append(plan.AffectedGoals, n.ID)
		}
	}
	sort.Strings(plan.InvalidEvidence)
	sort.Strings(plan.AffectedGoals)
	return plan
}
