package assurance

import (
	"testing"
)

func TestBuildAndSupport(t *testing.T) {
	c := BuildPCACase()
	if c.Size() < 15 {
		t.Fatalf("case size = %d, implausibly small", c.Size())
	}
	ok, err := c.Supported("G0")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fresh case root not supported")
	}
}

func TestStructuralRules(t *testing.T) {
	c := NewCase("G0", "root")
	if err := c.AddGoal("ghost", "G1", "x"); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if err := c.AddGoal("G0", "G0", "dup"); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := c.AddStrategy("G0", "S1", "strategy"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEvidence("S1", "E1", "ev", "comp", "1.0"); err != nil {
		t.Fatal(err)
	}
	// A goal under a solution is malformed.
	if err := c.AddGoal("E1", "G2", "x"); err == nil {
		t.Fatal("goal under solution accepted")
	}
	if _, ok := c.Node("E1"); !ok {
		t.Fatal("node lookup failed")
	}
	if _, err := c.Supported("ghost"); err == nil {
		t.Fatal("support query on unknown node succeeded")
	}
}

func TestGoalWithoutEvidenceUnsupported(t *testing.T) {
	c := NewCase("G0", "root")
	ok, err := c.Supported("G0")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("evidence-free goal reported supported")
	}
	// Context alone does not support.
	if err := c.AddContext("G0", "C1", "context"); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Supported("G0"); ok {
		t.Fatal("context-only goal reported supported")
	}
}

func TestUpgradeInvalidatesOnlyDependentEvidence(t *testing.T) {
	c := BuildPCACase()
	invalidated := c.UpgradeComponent("oximeter-firmware", "2.2")
	if len(invalidated) != 2 {
		t.Fatalf("invalidated = %v, want the two oximeter artifacts", invalidated)
	}
	// Root support collapses through G2a.
	if ok, _ := c.Supported("G0"); ok {
		t.Fatal("root still supported with stale oximeter evidence")
	}
	// Unrelated goals remain supported.
	for _, g := range []string{"G1", "G3", "G4", "G2b"} {
		if ok, _ := c.Supported(g); !ok {
			t.Fatalf("unrelated goal %s lost support", g)
		}
	}
}

func TestRecertificationPlanIsIncremental(t *testing.T) {
	c := BuildPCACase()
	c.UpgradeComponent("oximeter-firmware", "2.2")
	plan := c.PlanRecertification()
	if plan.TotalEvidence != 11 {
		t.Fatalf("total evidence = %d", plan.TotalEvidence)
	}
	if len(plan.InvalidEvidence) != 2 {
		t.Fatalf("invalid = %v", plan.InvalidEvidence)
	}
	// The whole point: the incremental plan re-examines a strict subset.
	if len(plan.InvalidEvidence) >= plan.TotalEvidence {
		t.Fatal("incremental plan degenerated to full review")
	}
	if len(plan.AffectedGoals) == 0 {
		t.Fatal("no affected goals listed")
	}
}

func TestReexamineRestoresSupport(t *testing.T) {
	c := BuildPCACase()
	invalidated := c.UpgradeComponent("supervisor-app", "3.1")
	if len(invalidated) != 4 {
		t.Fatalf("invalidated = %v", invalidated)
	}
	for _, id := range invalidated {
		if err := c.Reexamine(id); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := c.Supported("G0"); !ok {
		t.Fatal("root not restored after re-examination")
	}
	// Evidence now carries the new version: re-upgrading to the same
	// version invalidates nothing.
	if again := c.UpgradeComponent("supervisor-app", "3.1"); len(again) != 0 {
		t.Fatalf("same-version upgrade invalidated %v", again)
	}
	if err := c.Reexamine("G0"); err == nil {
		t.Fatal("Reexamine accepted a goal node")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[NodeKind]string{
		KindGoal: "goal", KindStrategy: "strategy", KindSolution: "solution",
		KindContext: "context", NodeKind(9): "unknown",
	} {
		if got := k.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", k, got, want)
		}
	}
}
