package assurance

// BuildPCACase constructs a realistic assurance case for the closed-loop
// PCA system of Figure 1, mirroring how its safety argument decomposes
// across the devices and apps in this repository. It is the subject of
// experiment E8.
func BuildPCACase() *Case {
	c := NewCase("G0", "The closed-loop PCA system does not cause opioid overdose harm")

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(c.AddContext("G0", "C0", "Deployment: PCA pump + pulse oximeter + ICE supervisor on a hospital network"))
	must(c.AddStrategy("G0", "S0", "Argue over hazard classes: overdose delivery, detection failure, actuation failure, security"))

	// Hazard 1: pump delivers beyond safe limits.
	must(c.AddGoal("S0", "G1", "The pump enforces programmed dose limits"))
	must(c.AddEvidence("G1", "E1a", "Pump lockout/hourly-limit unit tests", "pump-firmware", "1.0"))
	must(c.AddEvidence("G1", "E1b", "Pump stop-delay timing analysis", "pump-firmware", "1.0"))

	// Hazard 2: deterioration goes undetected.
	must(c.AddGoal("S0", "G2", "Respiratory depression is detected within 30 s"))
	must(c.AddStrategy("G2", "S2", "Argue over sensing and decision separately"))
	must(c.AddGoal("S2", "G2a", "Oximeter estimates are accurate and flag artifacts"))
	must(c.AddEvidence("G2a", "E2a", "SpO2 estimation accuracy report (±3%)", "oximeter-firmware", "2.1"))
	must(c.AddEvidence("G2a", "E2b", "Artifact-rejection validation", "oximeter-firmware", "2.1"))
	must(c.AddGoal("S2", "G2b", "Supervisor decision logic is correct"))
	must(c.AddEvidence("G2b", "E2c", "Model-checking proof of the interlock automaton", "supervisor-app", "3.0"))
	must(c.AddEvidence("G2b", "E2d", "Closed-loop simulation campaign (1000 patients)", "supervisor-app", "3.0"))

	// Hazard 3: the stop command fails to act.
	must(c.AddGoal("S0", "G3", "A commanded stop halts infusion despite network faults"))
	must(c.AddEvidence("G3", "E3a", "Stop-retry fault-injection tests (30% loss)", "supervisor-app", "3.0"))
	must(c.AddEvidence("G3", "E3b", "Fail-safe data-timeout verification", "supervisor-app", "3.0"))
	must(c.AddEvidence("G3", "E3c", "Pump command-interface conformance tests", "pump-firmware", "1.0"))

	// Hazard 4: network attacker.
	must(c.AddGoal("S0", "G4", "Network attackers cannot command the pump"))
	must(c.AddEvidence("G4", "E4a", "HMAC authentication penetration tests", "ice-platform", "1.2"))
	must(c.AddEvidence("G4", "E4b", "Role-based authorization review", "ice-platform", "1.2"))

	return c
}
