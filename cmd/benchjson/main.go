// Command benchjson measures the engine's headline throughput numbers and
// emits them as JSON — the repo's benchmark trajectory (BENCH_*.json).
// It times the hot paths directly (no `go test` harness) so CI can drop a
// machine-readable artifact next to the human-readable bench output:
//
//	go run ./cmd/benchjson -out BENCH_pr4.json
//
// Reported metrics:
//
//	kernel.arena_events_per_s      closure-free schedule+dispatch on the arena kernel
//	kernel.reference_events_per_s  the same workload on the pre-arena heap-of-pointers kernel
//	kernel.speedup                 arena / reference
//	mednet.datagrams_per_s         healthy-path send→fly→handle round trips
//	wire.binary_envelopes_per_s    icewire binary encode+decode+body round trips
//	wire.json_envelopes_per_s      the same round trip on the JSON debug codec
//	wire.speedup                   binary / json (BenchmarkEnvelopeCodec's headline)
//	fleet.cells_per_s              PCA ensemble throughput at the configured width
//	fleet.events_per_s             kernel events/s aggregated across those cells
//	fleet.cells_per_s_noproto      the same fleet with prototype cloning disabled
//	fleet.proto_speedup            cells_per_s / cells_per_s_noproto
//	fleet.cells_per_s_w{1,4,8}     the worker-scaling axis (prototype on)
//	gateway.jobs_per_s             icegate jobs submitted→done (cold: unique seeds)
//	gateway.cells_per_s            scenario cells/s through the gateway (cold)
//	gateway.cached_jobs_per_s      repeat-seed jobs served from the result cache
//	gateway.cells_per_s_2tenant    aggregate cells/s with two tenants driving the
//	                               weighted-fair scheduler (batch flood + interactive)
//	gateway.store_cold_jobs_per_s  unique-seed jobs computed AND persisted to a
//	                               fresh disk store (write-through cost)
//	gateway.store_warm_jobs_per_s  the same requests served from the disk store by
//	                               a restarted gateway with an empty memory cache
//	mesh.cells_per_s_1node         the same ensemble through an icemesh cluster
//	mesh.cells_per_s_2node         (coordinator + N node runtimes over localhost TCP)
//	mesh.scaling                   2-node / 1-node
//	mesh.cells_per_s_1node_large   the large-cell axis: fewer, longer cells, so
//	mesh.cells_per_s_2node_large   per-cell RPC overhead amortizes and scaling
//	mesh.scaling_large             approaches the node count
//	trace.self_share.<span>        per-span-name share of total self time in a
//	                               traced 2-node mesh run (attribution, not gated)
//	mesh.cells_per_s_1node_probe   the latency-bound axis: tele-icu-probe cells
//	mesh.cells_per_s_2node_probe   wait on a seed-derived remote RTT, so node
//	mesh.cells_per_s_4node         scaling is visible even on a single-core
//	mesh.scaling_2node_probe       host — the axis the streaming work-stealing
//	mesh.scaling_4node             coordinator is gated on (>=1.8x / >=3.4x)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/icegate"
	"repro/internal/icemesh"
	"repro/internal/icescope"
	"repro/internal/icestore"
	"repro/internal/icewire"
	"repro/internal/mednet"
	"repro/internal/sim"
)

type report struct {
	PR      string        `json:"pr"`
	Kernel  kernelReport  `json:"kernel"`
	Mednet  mednetReport  `json:"mednet"`
	Wire    wireReport    `json:"wire"`
	Fleet   fleetReport   `json:"fleet"`
	Gateway gatewayReport `json:"gateway"`
	Mesh    meshReport    `json:"mesh"`
	Trace   traceReport   `json:"trace"`
}

// traceReport is the attribution section: where a traced 2-node mesh
// ensemble's time actually goes, as per-span-name shares of total self
// time (each span's duration minus its direct children's). Shares are
// scale-free — they diff meaningfully across machines of different
// speeds — so benchcmp reports which spans moved when throughput
// regresses, but never gates on them independently.
type traceReport struct {
	SelfShare map[string]float64 `json:"self_share"`
}

type meshReport struct {
	Scenario       string  `json:"scenario"`
	Cells          int     `json:"cells"`
	NodeWorkers    int     `json:"node_workers"`
	CellsPerS1Node float64 `json:"cells_per_s_1node"`
	CellsPerS2Node float64 `json:"cells_per_s_2node"`
	Scaling        float64 `json:"scaling"`
	// The large-cell axis re-runs the same topology with fewer, longer
	// cells (LargeCells × LargeDurationS of sim time each). Per-cell RPC
	// and scheduling overhead is fixed, so long cells amortize it and
	// ScalingLarge isolates the wire cost from the compute cost — the
	// trace-confirmed explanation for the small-cell scaling gap.
	LargeCells          int     `json:"large_cells"`
	LargeDurationS      float64 `json:"large_duration_s"`
	CellsPerS1NodeLarge float64 `json:"cells_per_s_1node_large"`
	CellsPerS2NodeLarge float64 `json:"cells_per_s_2node_large"`
	ScalingLarge        float64 `json:"scaling_large"`
	// The probe axis is latency-bound rather than CPU-bound: each
	// tele-icu-probe cell sleeps a seed-derived remote RTT (rtt_ms knob)
	// after a short simulated session, so cells/s scales with total
	// worker count, not host cores. This is the axis that exercises the
	// streaming work-stealing coordinator — 4 nodes must pull shards
	// fast enough to keep 8 workers inside their RTTs.
	ProbeCells          int     `json:"probe_cells"`
	ProbeRTTMS          float64 `json:"probe_rtt_ms"`
	CellsPerS1NodeProbe float64 `json:"cells_per_s_1node_probe"`
	CellsPerS2NodeProbe float64 `json:"cells_per_s_2node_probe"`
	CellsPerS4Node      float64 `json:"cells_per_s_4node"`
	Scaling2NodeProbe   float64 `json:"scaling_2node_probe"`
	Scaling4Node        float64 `json:"scaling_4node"`
}

type kernelReport struct {
	ArenaEventsPerS     float64 `json:"arena_events_per_s"`
	ReferenceEventsPerS float64 `json:"reference_events_per_s"`
	Speedup             float64 `json:"speedup"`
}

type mednetReport struct {
	DatagramsPerS float64 `json:"datagrams_per_s"`
}

type wireReport struct {
	BinaryEnvelopesPerS float64 `json:"binary_envelopes_per_s"`
	JSONEnvelopesPerS   float64 `json:"json_envelopes_per_s"`
	Speedup             float64 `json:"speedup"`
	BinaryFrameBytes    int     `json:"binary_frame_bytes"`
	JSONFrameBytes      int     `json:"json_frame_bytes"`
}

type gatewayReport struct {
	Jobs      int     `json:"jobs"`
	Cells     int     `json:"cells_per_job"`
	JobsPerS  float64 `json:"jobs_per_s"`
	CellsPerS float64 `json:"cells_per_s"`
	// CachedJobsPerS resubmits an already-computed request: the
	// deterministic result cache answers without running a cell, so this
	// measures pure serving overhead (scheduler + cache + render path).
	CachedJobsPerS float64 `json:"cached_jobs_per_s"`
	// CellsPerS2Tenant drives two tenants at once — a weight-1 batch
	// flood and a weight-4 interactive stream — through the weighted-fair
	// scheduler, reporting aggregate cell throughput. Fairness must not
	// cost meaningful throughput; this is the axis that would catch a WFQ
	// bookkeeping cliff.
	CellsPerS2Tenant float64 `json:"cells_per_s_2tenant"`
	// The disk-store axes: cold runs compute unique-seed jobs and
	// write-through to a fresh store (persistence cost on the hot path);
	// warm replays the same requests against a restarted gateway whose
	// memory cache is empty, so every answer comes off disk.
	StoreColdJobsPerS float64 `json:"store_cold_jobs_per_s"`
	StoreWarmJobsPerS float64 `json:"store_warm_jobs_per_s"`
}

type fleetReport struct {
	Scenario   string  `json:"scenario"`
	Cells      int     `json:"cells"`
	Workers    int     `json:"workers"`
	CellsPerS  float64 `json:"cells_per_s"`
	EventsPerS float64 `json:"events_per_s"`
	// CellsPerSNoProto runs the identical fleet with prototype cloning
	// disabled (every cell constructed from scratch); ProtoSpeedup is
	// the on/off ratio. The worker axis (prototype on) tracks pool
	// scaling on the benchmark machine.
	CellsPerSNoProto float64 `json:"cells_per_s_noproto"`
	ProtoSpeedup     float64 `json:"proto_speedup"`
	CellsPerSW1      float64 `json:"cells_per_s_w1"`
	CellsPerSW4      float64 `json:"cells_per_s_w4"`
	CellsPerSW8      float64 `json:"cells_per_s_w8"`
}

// benchKernel times steady-state schedule+dispatch over a standing queue
// of 1024 events, mirroring BenchmarkKernelScheduling.
func benchKernel(n int, reference bool) float64 {
	sim.SetReferenceQueueForTest(reference)
	defer sim.SetReferenceQueueForTest(false)
	k := sim.NewKernel()
	noop := func(any) {}
	for i := 0; i < 1024; i++ {
		k.AtFunc(sim.Time(1)<<40+sim.Time(i), noop, nil)
	}
	sink := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if reference {
			j := i // the pre-refactor call shape: a capturing closure per event
			k.At(k.Now()+sim.Millisecond, func() { sink = j })
		} else {
			k.AtFunc(k.Now()+sim.Millisecond, noop, nil)
		}
		k.Step()
	}
	_ = sink
	return float64(n) / time.Since(start).Seconds()
}

func benchMednet(n int) float64 {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	net.Register("b", func(mednet.Message) {})
	payload := make([]byte, 64)
	start := time.Now()
	for i := 0; i < n; i++ {
		net.Send("a", "b", "obs", payload)
		if err := k.Run(k.Now() + 10*sim.Millisecond); err != nil {
			panic(err)
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

// benchWire times the full per-message codec cost — encode one publish
// envelope into a reused buffer, decode the frame, decode the typed
// body — mirroring BenchmarkEnvelopeCodec.
func benchWire(n int, codec icewire.Codec) (perS float64, frameBytes int) {
	datum := icewire.Datum{Topic: "ox1/spo2", Value: 97.25, Valid: true, Quality: 0.875, Sampled: 4987 * sim.Millisecond}
	var (
		buf   []byte
		env   icewire.Envelope
		out   icewire.Datum
		err   error
		start = time.Now()
	)
	for i := 0; i < n; i++ {
		if buf, err = codec.AppendEnvelope(buf[:0], icewire.MsgPublish, "ox1", "ice-manager", uint64(i), 5*sim.Second, &datum); err != nil {
			panic(err)
		}
		if env, err = codec.Decode(buf); err != nil {
			panic(err)
		}
		if err = codec.DecodeBody(&env, &out); err != nil {
			panic(err)
		}
	}
	perS = float64(n) / time.Since(start).Seconds()
	// Frame size is reported for a canonical envelope with a fixed
	// sequence number: cmd/benchcmp gates *_frame_bytes exactly, and the
	// JSON codec encodes seq in decimal digits, so measuring the last
	// loop frame would make the metric depend on the workload size.
	canon, err := codec.AppendEnvelope(nil, icewire.MsgPublish, "ox1", "ice-manager", 4242, 5*sim.Second, &datum)
	if err != nil {
		panic(err)
	}
	return perS, len(canon)
}

// benchGateway drives the icegate scheduler in-process: jobs seeds vary
// so the deterministic result cache never short-circuits the simulation.
func benchGateway(jobs, cells, workers int) (gatewayReport, error) {
	sched := icegate.NewScheduler(icegate.Config{QueueDepth: jobs + 1, Executors: 2, Workers: workers})
	defer sched.Close()
	run := func(seed int64) error {
		job, err := sched.Submit(icegate.Request{
			Scenario: fleet.ScenarioPCASupervised, Seed: seed, Cells: cells, DurationS: 1800,
		})
		if err != nil {
			return err
		}
		<-job.Done()
		if st := job.Status(); st != icegate.StatusDone {
			return fmt.Errorf("benchjson: gateway job ended %v", st)
		}
		return nil
	}
	if err := run(999); err != nil { // warm (build caches, page in)
		return gatewayReport{}, err
	}
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := run(int64(1000 + i)); err != nil {
			return gatewayReport{}, err
		}
	}
	elapsed := time.Since(start).Seconds()
	rep := gatewayReport{
		Jobs: jobs, Cells: cells,
		JobsPerS:  float64(jobs) / elapsed,
		CellsPerS: float64(jobs*cells) / elapsed,
	}
	// Cached axis: resubmit the warm seed; the result cache answers
	// without simulating, so cheap to sample many times.
	const cachedJobs = 50
	start = time.Now()
	for i := 0; i < cachedJobs; i++ {
		if err := run(999); err != nil {
			return gatewayReport{}, err
		}
	}
	rep.CachedJobsPerS = float64(cachedJobs) / time.Since(start).Seconds()
	return rep, nil
}

// benchGateway2Tenant runs a batch flood and an interactive stream from
// two tenants concurrently through the weighted-fair scheduler and
// reports aggregate cells/s — the cost of fairness bookkeeping on the
// serving path.
func benchGateway2Tenant(jobsPerTenant, cells, workers int) (float64, error) {
	sched := icegate.NewScheduler(icegate.Config{
		QueueDepth: 2*jobsPerTenant + 2, Executors: 2, Workers: workers,
		Tenants: icegate.TenantsConfig{Tenants: map[string]icegate.Quota{
			"sweep": {Weight: 1}, "live": {Weight: 4},
		}},
	})
	defer sched.Close()
	submit := func(tenant, lane string, seed int64) (*icegate.Job, error) {
		return sched.Submit(icegate.Request{
			Scenario: fleet.ScenarioPCASupervised, Seed: seed, Cells: cells, DurationS: 1800,
			Tenant: tenant, Lane: lane,
		})
	}
	warm, err := submit("sweep", icegate.LaneBatch, 1999) // build caches, page in
	if err != nil {
		return 0, err
	}
	<-warm.Done()
	var jobs []*icegate.Job
	start := time.Now()
	for i := 0; i < jobsPerTenant; i++ {
		a, err := submit("sweep", icegate.LaneBatch, int64(2000+i))
		if err != nil {
			return 0, err
		}
		b, err := submit("live", icegate.LaneInteractive, int64(3000+i))
		if err != nil {
			return 0, err
		}
		jobs = append(jobs, a, b)
	}
	for _, j := range jobs {
		<-j.Done()
		if st := j.Status(); st != icegate.StatusDone {
			return 0, fmt.Errorf("benchjson: 2-tenant job ended %v", st)
		}
	}
	return float64(len(jobs)*cells) / time.Since(start).Seconds(), nil
}

// benchGatewayStore measures the disk store's two regimes: cold (unique
// seeds computed and written through to a fresh store) and warm (the
// identical requests answered by a restarted gateway whose memory cache
// is empty, so every hit comes off disk).
func benchGatewayStore(jobs, cells, workers int) (coldPerS, warmPerS float64, err error) {
	dir, err := os.MkdirTemp("", "benchjson-store-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	open := func() (*icegate.Scheduler, error) {
		st, err := icestore.Open(icestore.Config{Dir: dir})
		if err != nil {
			return nil, err
		}
		return icegate.NewScheduler(icegate.Config{
			QueueDepth: jobs + 1, Executors: 2, Workers: workers, Store: st,
		}), nil
	}
	run := func(sched *icegate.Scheduler, seed int64) error {
		job, err := sched.Submit(icegate.Request{
			Scenario: fleet.ScenarioPCASupervised, Seed: seed, Cells: cells, DurationS: 1800,
		})
		if err != nil {
			return err
		}
		<-job.Done()
		if st := job.Status(); st != icegate.StatusDone {
			return fmt.Errorf("benchjson: store job ended %v", st)
		}
		return nil
	}
	cold, err := open()
	if err != nil {
		return 0, 0, err
	}
	if err := run(cold, 4999); err != nil { // warm the fleet paths, not the store seeds
		cold.Close()
		return 0, 0, err
	}
	start := time.Now()
	for i := 0; i < jobs; i++ {
		if err := run(cold, int64(5000+i)); err != nil {
			cold.Close()
			return 0, 0, err
		}
	}
	coldPerS = float64(jobs) / time.Since(start).Seconds()
	cold.Close()
	// The "restart": a fresh scheduler (empty memory cache) over the same
	// store directory — the daemon-restart serving path, in-process. A
	// disk hit promotes the entry into the memory cache, so each round
	// reopens to keep every answer coming off disk; only the serving time
	// is on the clock.
	const warmRounds = 5
	var warmElapsed time.Duration
	for r := 0; r < warmRounds; r++ {
		warm, err := open()
		if err != nil {
			return 0, 0, err
		}
		start = time.Now()
		for i := 0; i < jobs; i++ {
			if err := run(warm, int64(5000+i)); err != nil {
				warm.Close()
				return 0, 0, err
			}
		}
		warmElapsed += time.Since(start)
		warm.Close()
	}
	warmPerS = float64(warmRounds*jobs) / warmElapsed.Seconds()
	return coldPerS, warmPerS, nil
}

func benchFleet(cells, workers int, noProto bool) (cellsPerS, eventsPerS float64, err error) {
	spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
		Seed: 42, Cells: cells, Duration: 30 * sim.Minute,
	})
	if err != nil {
		return 0, 0, err
	}
	runner := fleet.Runner{Workers: workers, NoPrototype: noProto}
	if _, err := runner.Run(spec); err != nil { // warm (build caches, page in)
		return 0, 0, err
	}
	const rounds = 3
	var events uint64
	start := time.Now()
	for i := 0; i < rounds; i++ {
		res, err := runner.Run(spec)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range res {
			events += r.Events
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(rounds*cells) / elapsed, float64(events) / elapsed, nil
}

// benchMesh times one fleet ensemble through an in-process icemesh
// cluster: a coordinator plus `nodes` node runtimes talking real TCP on
// localhost, each node running `nodeWorkers` fleet workers. duration is
// the per-cell sim horizon — the knob that moves the compute:RPC ratio
// for the large-cell axis — and knobs parameterize the scenario (the
// probe axis sets rtt_ms to make cells latency-bound).
func benchMesh(scenario string, cells, nodeWorkers, nodes int, duration sim.Time, knobs map[string]float64, rounds int) (cellsPerS float64, err error) {
	coord := icemesh.NewCoordinator(icemesh.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go coord.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); ln.Close(); coord.Close() }()
	for i := 0; i < nodes; i++ {
		node := icemesh.NewNode(icemesh.NodeConfig{Coordinator: ln.Addr().String(), Workers: nodeWorkers})
		go func() { _ = node.Run(ctx) }()
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	if err := coord.WaitForNodes(waitCtx, nodes); err != nil {
		return 0, err
	}

	spec, err := fleet.Build(scenario, fleet.Params{
		Seed: 42, Cells: cells, Duration: duration, Knobs: knobs,
	})
	if err != nil {
		return 0, err
	}
	runner := fleet.Runner{Workers: nodeWorkers, Engine: coord}
	if _, err := runner.Run(spec); err != nil { // warm (build caches, page in)
		return 0, err
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if _, err := runner.Run(spec); err != nil {
			return 0, err
		}
	}
	return float64(rounds*cells) / time.Since(start).Seconds(), nil
}

// normalizeSpanName collapses instance-specific span names into stable
// attribution keys: tokens containing digits (shard ids, cell ranges,
// node names) are dropped and the rest join with underscores, so
// "shard 3 [6,8) worker-1" and "shard 9 [0,2) worker-2" both become
// "shard" and their self times aggregate.
func normalizeSpanName(name string) string {
	var kept []string
	for _, tok := range strings.Fields(name) {
		if strings.ContainsAny(tok, "0123456789") {
			continue
		}
		kept = append(kept, tok)
	}
	if len(kept) == 0 {
		return "other"
	}
	return strings.Join(kept, "_")
}

// benchTrace runs one traced ensemble through a 2-node mesh — the
// instrumented twin of the mesh axis, with span forwarding live — and
// reports each normalized span name's share of total self time.
func benchTrace(scenario string, cells, nodeWorkers int) (map[string]float64, error) {
	coord := icemesh.NewCoordinator(icemesh.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go coord.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); ln.Close(); coord.Close() }()
	for i := 0; i < 2; i++ {
		node := icemesh.NewNode(icemesh.NodeConfig{Coordinator: ln.Addr().String(), Workers: nodeWorkers})
		go func() { _ = node.Run(ctx) }()
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	if err := coord.WaitForNodes(waitCtx, 2); err != nil {
		return nil, err
	}
	spec, err := fleet.Build(scenario, fleet.Params{Seed: 42, Cells: cells, Duration: 30 * sim.Minute})
	if err != nil {
		return nil, err
	}
	tr := icescope.NewTrace("benchjson")
	root := tr.Start(icescope.Span{}, "job")
	runner := fleet.Runner{Workers: nodeWorkers, Engine: coord, Span: root}
	if _, err := runner.Run(spec); err != nil {
		return nil, err
	}
	root.End()
	byName := map[string]time.Duration{}
	var total time.Duration
	for name, self := range tr.SelfTimes() {
		byName[normalizeSpanName(name)] += self
		total += self
	}
	if total <= 0 {
		return nil, fmt.Errorf("benchjson: traced run attributed no self time")
	}
	shares := make(map[string]float64, len(byName))
	for name, self := range byName {
		shares[name] = self.Seconds() / total.Seconds()
	}
	return shares, nil
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	kernelOps := flag.Int("kernel-ops", 2_000_000, "kernel schedule+dispatch ops to time")
	datagrams := flag.Int("datagrams", 200_000, "mednet round trips to time")
	envelopes := flag.Int("envelopes", 1_000_000, "wire codec round trips to time")
	cells := flag.Int("cells", 8, "fleet cells per round")
	workers := flag.Int("workers", runtime.NumCPU(), "fleet worker width")
	gwJobs := flag.Int("gateway-jobs", 3, "gateway jobs to time")
	largeCells := flag.Int("large-cells", 4, "cells for the large-cell mesh axis")
	largeHours := flag.Float64("large-hours", 4, "per-cell sim horizon (hours) for the large-cell mesh axis")
	probeCells := flag.Int("probe-cells", 400, "cells for the latency-bound mesh probe axis")
	probeRTT := flag.Float64("probe-rtt-ms", 8, "per-cell remote RTT (ms) for the mesh probe axis")
	flag.Parse()

	arena := benchKernel(*kernelOps, false)
	reference := benchKernel(*kernelOps, true)
	binPerS, binBytes := benchWire(*envelopes, icewire.NewBinary())
	jsonPerS, jsonBytes := benchWire(max(*envelopes/20, 1), icewire.NewJSON())
	cellsPerS, eventsPerS, err := benchFleet(*cells, *workers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	noProtoPerS, _, err := benchFleet(*cells, *workers, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	workerAxis := map[int]float64{}
	for _, w := range []int{1, 4, 8} {
		perS, _, err := benchFleet(*cells, w, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		workerAxis[w] = perS
	}
	gw, err := benchGateway(*gwJobs, *cells, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	gw.CellsPerS2Tenant, err = benchGateway2Tenant(*gwJobs, *cells, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	gw.StoreColdJobsPerS, gw.StoreWarmJobsPerS, err = benchGatewayStore(*gwJobs, *cells, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	nodeWorkers := max(*workers/2, 1)
	mesh1, err := benchMesh(fleet.ScenarioPCASupervised, *cells, nodeWorkers, 1, 30*sim.Minute, nil, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	mesh2, err := benchMesh(fleet.ScenarioPCASupervised, *cells, nodeWorkers, 2, 30*sim.Minute, nil, 3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	largeDur := sim.Time(*largeHours * float64(sim.Hour))
	mesh1Large, err := benchMesh(fleet.ScenarioPCASupervised, *largeCells, nodeWorkers, 1, largeDur, nil, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	mesh2Large, err := benchMesh(fleet.ScenarioPCASupervised, *largeCells, nodeWorkers, 2, largeDur, nil, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// Probe axis: latency-bound cells, two workers per node, so the
	// cluster's concurrency — not the host's core count — sets the rate.
	probeKnobs := map[string]float64{"rtt_ms": *probeRTT}
	probe := map[int]float64{}
	for _, nodes := range []int{1, 2, 4} {
		perS, err := benchMesh(fleet.ScenarioTeleICUProbe, *probeCells, 2, nodes, sim.Minute, probeKnobs, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		probe[nodes] = perS
	}
	traceShares, err := benchTrace(fleet.ScenarioPCASupervised, *cells, nodeWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	r := report{
		PR: "pr10-telemetry",
		Kernel: kernelReport{
			ArenaEventsPerS:     arena,
			ReferenceEventsPerS: reference,
			Speedup:             arena / reference,
		},
		Mednet: mednetReport{DatagramsPerS: benchMednet(*datagrams)},
		Wire: wireReport{
			BinaryEnvelopesPerS: binPerS,
			JSONEnvelopesPerS:   jsonPerS,
			Speedup:             binPerS / jsonPerS,
			BinaryFrameBytes:    binBytes,
			JSONFrameBytes:      jsonBytes,
		},
		Fleet: fleetReport{
			Scenario: fleet.ScenarioPCASupervised, Cells: *cells, Workers: *workers,
			CellsPerS: cellsPerS, EventsPerS: eventsPerS,
			CellsPerSNoProto: noProtoPerS, ProtoSpeedup: cellsPerS / noProtoPerS,
			CellsPerSW1: workerAxis[1], CellsPerSW4: workerAxis[4], CellsPerSW8: workerAxis[8],
		},
		Gateway: gw,
		Mesh: meshReport{
			Scenario: fleet.ScenarioPCASupervised, Cells: *cells, NodeWorkers: nodeWorkers,
			CellsPerS1Node: mesh1, CellsPerS2Node: mesh2, Scaling: mesh2 / mesh1,
			LargeCells: *largeCells, LargeDurationS: largeDur.Seconds(),
			CellsPerS1NodeLarge: mesh1Large, CellsPerS2NodeLarge: mesh2Large,
			ScalingLarge: mesh2Large / mesh1Large,
			ProbeCells:   *probeCells, ProbeRTTMS: *probeRTT,
			CellsPerS1NodeProbe: probe[1], CellsPerS2NodeProbe: probe[2],
			CellsPerS4Node:    probe[4],
			Scaling2NodeProbe: probe[2] / probe[1],
			Scaling4Node:      probe[4] / probe[1],
		},
		Trace: traceReport{SelfShare: traceShares},
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
