// Command benchjson measures the engine's headline throughput numbers and
// emits them as JSON — the repo's benchmark trajectory (BENCH_*.json).
// It times the hot paths directly (no `go test` harness) so CI can drop a
// machine-readable artifact next to the human-readable bench output:
//
//	go run ./cmd/benchjson -out BENCH_pr3.json
//
// Reported metrics:
//
//	kernel.arena_events_per_s      closure-free schedule+dispatch on the arena kernel
//	kernel.reference_events_per_s  the same workload on the pre-arena heap-of-pointers kernel
//	kernel.speedup                 arena / reference
//	mednet.datagrams_per_s         healthy-path send→fly→handle round trips
//	fleet.cells_per_s              PCA ensemble throughput at the configured width
//	fleet.events_per_s             kernel events/s aggregated across those cells
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/fleet"
	"repro/internal/mednet"
	"repro/internal/sim"
)

type report struct {
	PR     string       `json:"pr"`
	Kernel kernelReport `json:"kernel"`
	Mednet mednetReport `json:"mednet"`
	Fleet  fleetReport  `json:"fleet"`
}

type kernelReport struct {
	ArenaEventsPerS     float64 `json:"arena_events_per_s"`
	ReferenceEventsPerS float64 `json:"reference_events_per_s"`
	Speedup             float64 `json:"speedup"`
}

type mednetReport struct {
	DatagramsPerS float64 `json:"datagrams_per_s"`
}

type fleetReport struct {
	Scenario   string  `json:"scenario"`
	Cells      int     `json:"cells"`
	Workers    int     `json:"workers"`
	CellsPerS  float64 `json:"cells_per_s"`
	EventsPerS float64 `json:"events_per_s"`
}

// benchKernel times steady-state schedule+dispatch over a standing queue
// of 1024 events, mirroring BenchmarkKernelScheduling.
func benchKernel(n int, reference bool) float64 {
	sim.SetReferenceQueueForTest(reference)
	defer sim.SetReferenceQueueForTest(false)
	k := sim.NewKernel()
	noop := func(any) {}
	for i := 0; i < 1024; i++ {
		k.AtFunc(sim.Time(1)<<40+sim.Time(i), noop, nil)
	}
	sink := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if reference {
			j := i // the pre-refactor call shape: a capturing closure per event
			k.At(k.Now()+sim.Millisecond, func() { sink = j })
		} else {
			k.AtFunc(k.Now()+sim.Millisecond, noop, nil)
		}
		k.Step()
	}
	_ = sink
	return float64(n) / time.Since(start).Seconds()
}

func benchMednet(n int) float64 {
	k := sim.NewKernel()
	net := mednet.MustNew(k, sim.NewRNG(1), mednet.DefaultLink())
	net.Register("b", func(mednet.Message) {})
	payload := make([]byte, 64)
	start := time.Now()
	for i := 0; i < n; i++ {
		net.Send("a", "b", "obs", payload)
		if err := k.Run(k.Now() + 10*sim.Millisecond); err != nil {
			panic(err)
		}
	}
	return float64(n) / time.Since(start).Seconds()
}

func benchFleet(cells, workers int) (cellsPerS, eventsPerS float64, err error) {
	spec, err := fleet.Build(fleet.ScenarioPCASupervised, fleet.Params{
		Seed: 42, Cells: cells, Duration: 30 * sim.Minute,
	})
	if err != nil {
		return 0, 0, err
	}
	runner := fleet.Runner{Workers: workers}
	if _, err := runner.Run(spec); err != nil { // warm (build caches, page in)
		return 0, 0, err
	}
	const rounds = 3
	var events uint64
	start := time.Now()
	for i := 0; i < rounds; i++ {
		res, err := runner.Run(spec)
		if err != nil {
			return 0, 0, err
		}
		for _, r := range res {
			events += r.Events
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(rounds*cells) / elapsed, float64(events) / elapsed, nil
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	kernelOps := flag.Int("kernel-ops", 2_000_000, "kernel schedule+dispatch ops to time")
	datagrams := flag.Int("datagrams", 200_000, "mednet round trips to time")
	cells := flag.Int("cells", 8, "fleet cells per round")
	workers := flag.Int("workers", runtime.NumCPU(), "fleet worker width")
	flag.Parse()

	arena := benchKernel(*kernelOps, false)
	reference := benchKernel(*kernelOps, true)
	cellsPerS, eventsPerS, err := benchFleet(*cells, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	r := report{
		PR: "pr3-hot-path-engine",
		Kernel: kernelReport{
			ArenaEventsPerS:     arena,
			ReferenceEventsPerS: reference,
			Speedup:             arena / reference,
		},
		Mednet: mednetReport{DatagramsPerS: benchMednet(*datagrams)},
		Fleet: fleetReport{
			Scenario: fleet.ScenarioPCASupervised, Cells: *cells, Workers: *workers,
			CellsPerS: cellsPerS, EventsPerS: eventsPerS,
		},
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
