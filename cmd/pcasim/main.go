// Command pcasim runs the paper's Figure 1 closed-loop PCA scenario and
// prints the outcome table and (optionally) the ground-truth time series.
//
// Usage:
//
//	pcasim [-seed N] [-hours H] [-trace] [-no-supervisor]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/closedloop"
	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 42, "simulation seed")
	hours := flag.Float64("hours", 2, "session length in virtual hours")
	trace := flag.Bool("trace", false, "print the ground-truth time series of the supervised run")
	noSup := flag.Bool("no-supervisor", false, "run only the unsupervised configuration")
	flag.Parse()

	dur := sim.FromSeconds(*hours * 3600)
	if *noSup {
		cfg := closedloop.DefaultPCAScenario(*seed)
		cfg.Duration = dur
		cfg.SupervisorEnabled = false
		out, _, err := closedloop.RunPCAScenario(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcasim:", err)
			os.Exit(1)
		}
		fmt.Printf("unsupervised: min SpO2 %.1f%%, %.0f s below 85%%, distress=%v, %.1f mg delivered\n",
			out.MinSpO2, out.SecondsBelow85, out.Distressed, out.TotalDrugMg)
		return
	}

	tab, err := experiments.F1PCAControlLoop(experiments.F1Options{Seed: *seed, Duration: dur})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcasim:", err)
		os.Exit(1)
	}
	fmt.Print(tab)
	if *trace {
		txt, err := experiments.F1Trace(experiments.F1Options{Seed: *seed, Duration: dur}, 5*sim.Minute)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pcasim:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(txt)
	}
}
