package main

import (
	"strings"
	"testing"
)

func TestCompareGatesThroughputRegression(t *testing.T) {
	oldDoc := []byte(`{"wire":{"binary_envelopes_per_s":1000000,"binary_frame_bytes":60}}`)
	newDoc := []byte(`{"wire":{"binary_envelopes_per_s":500000,"binary_frame_bytes":60}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out)
	}
}

func TestCompareToleratesNoise(t *testing.T) {
	oldDoc := []byte(`{"fleet":{"cells_per_s":62.0},"kernel":{"arena_events_per_s":12500000}}`)
	newDoc := []byte(`{"fleet":{"cells_per_s":55.0},"kernel":{"arena_events_per_s":11000000}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("noise-sized dips should pass, got %d regressions:\n%s", n, out)
	}
}

func TestCompareFrameBytesExact(t *testing.T) {
	oldDoc := []byte(`{"wire":{"binary_frame_bytes":60}}`)
	newDoc := []byte(`{"wire":{"binary_frame_bytes":61}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("one grown byte must fail (deterministic encoder), got %d:\n%s", n, out)
	}
}

func TestCompareDroppedMetricFails(t *testing.T) {
	oldDoc := []byte(`{"fleet":{"cells_per_s":62.0}}`)
	newDoc := []byte(`{"fleet":{}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("dropping a gated metric must fail, got %d:\n%s", n, out)
	}
}

func TestCompareNewMetricsAndRatiosInformational(t *testing.T) {
	oldDoc := []byte(`{"kernel":{"speedup":3.0}}`)
	newDoc := []byte(`{"kernel":{"speedup":1.5},"mesh":{"scaling":0.9,"cells_per_s_1node":50}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("ratios are informational and new metrics are welcome, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("new metric not marked:\n%s", out)
	}
}

func TestCompareTraceSharesNotGated(t *testing.T) {
	oldDoc := []byte(`{"trace":{"self_share":{"cell_run":0.50,"shard":0.30}}}`)
	newDoc := []byte(`{"trace":{"self_share":{"cell_run":0.10,"shard":0.70}}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("trace shares must never gate on their own, got %d regressions:\n%s", n, out)
	}
	if !strings.Contains(out, "trace.self_share.cell_run") || !strings.Contains(out, "pp") {
		t.Fatalf("trace shares not diffed in percentage points:\n%s", out)
	}
	if strings.Contains(out, "top moved spans") {
		t.Fatalf("attribution footer printed without a throughput failure:\n%s", out)
	}
}

// The synthetic regression fixture: throughput collapses AND the trace
// section shows where the time went. The failure output must name the
// top-moved span so the gate explains the regression, not just flag it.
func TestCompareRegressionNamesTopMovedSpans(t *testing.T) {
	oldDoc := []byte(`{
		"mesh":{"cells_per_s_2node":100},
		"trace":{"self_share":{"cell_run":0.20,"shard":0.10,"plan":0.05,"node":0.65}}
	}`)
	newDoc := []byte(`{
		"mesh":{"cells_per_s_2node":40},
		"trace":{"self_share":{"cell_run":0.55,"shard":0.12,"plan":0.04,"node":0.29}}
	}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("want 1 throughput regression, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "top moved spans") {
		t.Fatalf("failure output missing trace attribution footer:\n%s", out)
	}
	// cell_run (+35pp) and node (-36pp) are the top movers; plan (-1pp)
	// must be cut by the top-3 limit.
	footer := out[strings.Index(out, "top moved spans"):]
	if !strings.Contains(footer, "cell_run") || !strings.Contains(footer, "node") {
		t.Fatalf("top movers not named:\n%s", footer)
	}
	if strings.Contains(footer, "plan") {
		t.Fatalf("minor mover survived the top-3 cut:\n%s", footer)
	}
}

func TestCompareDocsAveragesBaselines(t *testing.T) {
	// Baselines 80 and 120 average to 100; a candidate at 75 is inside
	// the 30% band of the mean (70) but would fail against the 120
	// baseline alone — the mean is the contract.
	base1 := []byte(`{"fleet":{"cells_per_s":80}}`)
	base2 := []byte(`{"fleet":{"cells_per_s":120}}`)
	newDoc := []byte(`{"fleet":{"cells_per_s":75}}`)
	out, n := compareDocs([][]byte{base1, base2}, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("75 vs mean(80,120)=100 is within the 35%% fleet band, got %d regressions:\n%s", n, out)
	}
	if !strings.Contains(out, "old(mean/2)") {
		t.Fatalf("multi-baseline header missing:\n%s", out)
	}
	// And a real collapse still fails against the mean.
	_, n = compareDocs([][]byte{base1, base2}, []byte(`{"fleet":{"cells_per_s":30}}`), 0.30)
	if n != 1 {
		t.Fatalf("30 vs mean 100 must fail, got %d regressions", n)
	}
}

// A metric reported by only some baselines averages over those that
// have it, rather than being diluted by zeros.
func TestCompareDocsPartialBaselineCoverage(t *testing.T) {
	base1 := []byte(`{"fleet":{"cells_per_s":100}}`)
	base2 := []byte(`{"fleet":{"cells_per_s":100},"mesh":{"cells_per_s_2node":50}}`)
	newDoc := []byte(`{"fleet":{"cells_per_s":100},"mesh":{"cells_per_s_2node":48}}`)
	out, n := compareDocs([][]byte{base1, base2}, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("48 vs single-baseline 50 is fine; zero-dilution would read the mean as 25 and pass a collapse instead. got %d:\n%s", n, out)
	}
	_, n = compareDocs([][]byte{base1, base2}, []byte(`{"fleet":{"cells_per_s":100},"mesh":{"cells_per_s_2node":20}}`), 0.30)
	if n != 1 {
		t.Fatalf("20 vs 50 must fail even when one baseline lacks the metric, got %d", n)
	}
}
