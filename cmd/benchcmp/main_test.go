package main

import (
	"strings"
	"testing"
)

func TestCompareGatesThroughputRegression(t *testing.T) {
	oldDoc := []byte(`{"wire":{"binary_envelopes_per_s":1000000,"binary_frame_bytes":60}}`)
	newDoc := []byte(`{"wire":{"binary_envelopes_per_s":500000,"binary_frame_bytes":60}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("want 1 regression, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "FAIL") {
		t.Fatalf("missing FAIL verdict:\n%s", out)
	}
}

func TestCompareToleratesNoise(t *testing.T) {
	oldDoc := []byte(`{"fleet":{"cells_per_s":62.0},"kernel":{"arena_events_per_s":12500000}}`)
	newDoc := []byte(`{"fleet":{"cells_per_s":55.0},"kernel":{"arena_events_per_s":11000000}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("noise-sized dips should pass, got %d regressions:\n%s", n, out)
	}
}

func TestCompareFrameBytesExact(t *testing.T) {
	oldDoc := []byte(`{"wire":{"binary_frame_bytes":60}}`)
	newDoc := []byte(`{"wire":{"binary_frame_bytes":61}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("one grown byte must fail (deterministic encoder), got %d:\n%s", n, out)
	}
}

func TestCompareDroppedMetricFails(t *testing.T) {
	oldDoc := []byte(`{"fleet":{"cells_per_s":62.0}}`)
	newDoc := []byte(`{"fleet":{}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 1 {
		t.Fatalf("dropping a gated metric must fail, got %d:\n%s", n, out)
	}
}

func TestCompareNewMetricsAndRatiosInformational(t *testing.T) {
	oldDoc := []byte(`{"kernel":{"speedup":3.0}}`)
	newDoc := []byte(`{"kernel":{"speedup":1.5},"mesh":{"scaling":0.9,"cells_per_s_1node":50}}`)
	out, n := compare(oldDoc, newDoc, 0.30)
	if n != 0 {
		t.Fatalf("ratios are informational and new metrics are welcome, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "new") {
		t.Fatalf("new metric not marked:\n%s", out)
	}
}
