// Command benchcmp compares two benchmark trajectory files
// (BENCH_*.json, written by cmd/benchjson) and fails when the newer one
// regresses. It is the CI perf gate:
//
//	go run ./cmd/benchcmp -old BENCH_pr5.json -new BENCH_pr6.json
//
// Every numeric metric is classified by its path:
//
//   - *_frame_bytes: deterministic encoder output. Gated exactly — any
//     growth is a real wire-format regression, never noise.
//   - *_per_s / *per_s_*: throughput, higher is better. Gated with a
//     per-metric tolerance band: interleaved A/B runs of identical
//     binaries on the benchmark machines swing ±10-20% run to run (see
//     DESIGN.md "Reading the benchmarks"), so bands are sized to catch
//     structural regressions, not scheduler weather. End-to-end paths
//     (gateway, mesh) get wider bands than microbenchmarks.
//   - speedup / scaling ratios and configuration echoes (cells, workers,
//     ...): informational, printed but never gated.
//
// A throughput metric present in -old but missing from -new fails the
// gate: silently dropping a measurement is how the last regression went
// unnoticed. New metrics in -new are fine (the trajectory grows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// tolerances maps metric paths to their relative regression band. The
// fallthrough default (-tol) covers paths not listed here. Bands are
// deliberately wider than one standard machine-noise swing: the gate
// exists to catch the 2x cliff nobody noticed, and a band that cries
// wolf on scheduler noise gets deleted within three PRs.
var tolerances = map[string]float64{
	"gateway.jobs_per_s":            0.45, // e2e: HTTP + scheduler + fleet, noisiest
	"gateway.cells_per_s":           0.45,
	"gateway.cached_jobs_per_s":     0.45,
	"gateway.cells_per_s_2tenant":   0.45, // e2e plus WFQ bookkeeping
	"gateway.store_cold_jobs_per_s": 0.45, // e2e plus disk write-through
	"gateway.store_warm_jobs_per_s": 0.45, // disk read + checksum + render

	"mesh.cells_per_s_1node":    0.45, // e2e: TCP RPC + node runtimes
	"mesh.cells_per_s_2node":    0.45,
	"fleet.cells_per_s":         0.35, // parallel pool on a shared machine
	"fleet.events_per_s":        0.35,
	"fleet.cells_per_s_w1":      0.35,
	"fleet.cells_per_s_w4":      0.35,
	"fleet.cells_per_s_w8":      0.35,
	"fleet.cells_per_s_noproto": 0.35,
}

type metric struct {
	old, new float64
	hasOld   bool
	hasNew   bool
}

// flatten walks a decoded JSON tree collecting numeric leaves under
// dotted paths.
func flatten(prefix string, v any, into map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, into)
		}
	case float64:
		into[prefix] = t
	}
}

func class(path string) string {
	base := path[strings.LastIndexByte(path, '.')+1:]
	switch {
	case strings.HasSuffix(base, "_frame_bytes"):
		return "bytes"
	case strings.Contains(base, "per_s"):
		return "throughput"
	default:
		return "info"
	}
}

// compare renders the comparison table and returns the number of gated
// regressions. defaultTol is the band for throughput metrics without an
// entry in tolerances.
func compare(oldDoc, newDoc []byte, defaultTol float64) (string, int) {
	var oldV, newV any
	if err := json.Unmarshal(oldDoc, &oldV); err != nil {
		return fmt.Sprintf("benchcmp: bad -old JSON: %v\n", err), 1
	}
	if err := json.Unmarshal(newDoc, &newV); err != nil {
		return fmt.Sprintf("benchcmp: bad -new JSON: %v\n", err), 1
	}
	oldM := map[string]float64{}
	newM := map[string]float64{}
	flatten("", oldV, oldM)
	flatten("", newV, newM)

	merged := map[string]*metric{}
	for k, v := range oldM {
		merged[k] = &metric{old: v, hasOld: true}
	}
	for k, v := range newM {
		m, ok := merged[k]
		if !ok {
			m = &metric{}
			merged[k] = m
		}
		m.new, m.hasNew = v, true
	}
	paths := make([]string, 0, len(merged))
	for k := range merged {
		paths = append(paths, k)
	}
	sort.Strings(paths)

	var b strings.Builder
	regressions := 0
	fmt.Fprintf(&b, "%-34s %14s %14s %8s  %s\n", "metric", "old", "new", "delta", "verdict")
	for _, p := range paths {
		m := merged[p]
		c := class(p)
		switch {
		case !m.hasNew:
			if c == "throughput" || c == "bytes" {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14s %8s  FAIL (metric dropped)\n", p, m.old, "-", "-")
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14s %8s  dropped (info)\n", p, m.old, "-", "-")
			}
			continue
		case !m.hasOld:
			fmt.Fprintf(&b, "%-34s %14s %14.6g %8s  new\n", p, "-", m.new, "-")
			continue
		}
		delta := 0.0
		if m.old != 0 {
			delta = (m.new - m.old) / m.old
		}
		switch c {
		case "bytes":
			if m.new > m.old {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  FAIL (frame grew; encoding is deterministic)\n", p, m.old, m.new, 100*delta)
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  ok (exact)\n", p, m.old, m.new, 100*delta)
			}
		case "throughput":
			tol, ok := tolerances[p]
			if !ok {
				tol = defaultTol
			}
			if m.new < m.old*(1-tol) {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  FAIL (band -%.0f%%)\n", p, m.old, m.new, 100*delta, 100*tol)
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  ok (band -%.0f%%)\n", p, m.old, m.new, 100*delta, 100*tol)
			}
		default:
			fmt.Fprintf(&b, "%-34s %14.6g %14.6g %8s  info\n", p, m.old, m.new, "-")
		}
	}
	return b.String(), regressions
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json")
	newPath := flag.String("new", "", "candidate BENCH_*.json")
	tol := flag.Float64("tol", 0.30, "default relative regression band for throughput metrics without a per-metric entry")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: need -old and -new")
		os.Exit(2)
	}
	oldDoc, err := os.ReadFile(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newDoc, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	table, regressions := compare(oldDoc, newDoc, *tol)
	fmt.Print(table)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond tolerance\n", regressions)
		os.Exit(1)
	}
	fmt.Println("benchcmp: within tolerance")
}
