// Command benchcmp compares two benchmark trajectory files
// (BENCH_*.json, written by cmd/benchjson) and fails when the newer one
// regresses. It is the CI perf gate:
//
//	go run ./cmd/benchcmp -old BENCH_pr5.json -new BENCH_pr6.json
//
// Every numeric metric is classified by its path:
//
//   - *_frame_bytes: deterministic encoder output. Gated exactly — any
//     growth is a real wire-format regression, never noise.
//   - *_per_s / *per_s_*: throughput, higher is better. Gated with a
//     per-metric tolerance band: interleaved A/B runs of identical
//     binaries on the benchmark machines swing ±10-20% run to run (see
//     DESIGN.md "Reading the benchmarks"), so bands are sized to catch
//     structural regressions, not scheduler weather. End-to-end paths
//     (gateway, mesh) get wider bands than microbenchmarks.
//   - speedup / scaling ratios and configuration echoes (cells, workers,
//     ...): informational, printed but never gated.
//
// A throughput metric present in -old but missing from -new fails the
// gate: silently dropping a measurement is how the last regression went
// unnoticed. New metrics in -new are fine (the trajectory grows).
//
// Two additions on top of the plain two-file diff:
//
//   - Multiple baselines: -baseline is repeatable and glob-expanded
//     ("-baseline 'BENCH_pr*.json'"); the gate compares -new against the
//     per-metric MEAN of every baseline, so one noisy historical run
//     can't single-handedly move the band.
//   - Trace attribution: trace.* metrics (per-span self-time shares from
//     benchjson's instrumented run) are diffed in percentage points but
//     never gated on their own — shares are where time went, not how
//     fast it ran. When a throughput metric DOES fail, the verdict names
//     the top-moved spans, turning "mesh got slower" into "mesh got
//     slower and cell_run's share grew 12 points".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// tolerances maps metric paths to their relative regression band. The
// fallthrough default (-tol) covers paths not listed here. Bands are
// deliberately wider than one standard machine-noise swing: the gate
// exists to catch the 2x cliff nobody noticed, and a band that cries
// wolf on scheduler noise gets deleted within three PRs.
var tolerances = map[string]float64{
	"gateway.jobs_per_s":            0.45, // e2e: HTTP + scheduler + fleet, noisiest
	"gateway.cells_per_s":           0.45,
	"gateway.cached_jobs_per_s":     0.45,
	"gateway.cells_per_s_2tenant":   0.45, // e2e plus WFQ bookkeeping
	"gateway.store_cold_jobs_per_s": 0.45, // e2e plus disk write-through
	"gateway.store_warm_jobs_per_s": 0.45, // disk read + checksum + render

	"mesh.cells_per_s_1node":    0.45, // e2e: TCP RPC + node runtimes
	"mesh.cells_per_s_2node":    0.45,
	"fleet.cells_per_s":         0.35, // parallel pool on a shared machine
	"fleet.events_per_s":        0.35,
	"fleet.cells_per_s_w1":      0.35,
	"fleet.cells_per_s_w4":      0.35,
	"fleet.cells_per_s_w8":      0.35,
	"fleet.cells_per_s_noproto": 0.35,
}

type metric struct {
	old, new float64
	hasOld   bool
	hasNew   bool
}

// flatten walks a decoded JSON tree collecting numeric leaves under
// dotted paths.
func flatten(prefix string, v any, into map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, into)
		}
	case float64:
		into[prefix] = t
	}
}

func class(path string) string {
	if strings.HasPrefix(path, "trace.") {
		return "trace"
	}
	base := path[strings.LastIndexByte(path, '.')+1:]
	switch {
	case strings.HasSuffix(base, "_frame_bytes"):
		return "bytes"
	case strings.Contains(base, "per_s"):
		return "throughput"
	default:
		return "info"
	}
}

// traceDelta is one span's share movement, kept aside so a throughput
// failure can name the top movers.
type traceDelta struct {
	span     string // path with the trace.self_share. prefix stripped
	old, new float64
}

// compare renders the comparison against one baseline and returns the
// number of gated regressions — the original two-file entry point,
// kept for callers and tests.
func compare(oldDoc, newDoc []byte, defaultTol float64) (string, int) {
	return compareDocs([][]byte{oldDoc}, newDoc, defaultTol)
}

// compareDocs renders the comparison table and returns the number of
// gated regressions. Each metric's baseline is the mean of its values
// across the oldDocs that report it; defaultTol is the band for
// throughput metrics without an entry in tolerances.
func compareDocs(oldDocs [][]byte, newDoc []byte, defaultTol float64) (string, int) {
	merged := map[string]*metric{}
	counts := map[string]int{}
	for i, doc := range oldDocs {
		var v any
		if err := json.Unmarshal(doc, &v); err != nil {
			return fmt.Sprintf("benchcmp: bad baseline JSON (#%d): %v\n", i+1, err), 1
		}
		flat := map[string]float64{}
		flatten("", v, flat)
		for k, val := range flat {
			m, ok := merged[k]
			if !ok {
				m = &metric{}
				merged[k] = m
			}
			m.old += val
			m.hasOld = true
			counts[k]++
		}
	}
	for k, n := range counts {
		merged[k].old /= float64(n)
	}
	var newV any
	if err := json.Unmarshal(newDoc, &newV); err != nil {
		return fmt.Sprintf("benchcmp: bad -new JSON: %v\n", err), 1
	}
	newM := map[string]float64{}
	flatten("", newV, newM)
	for k, v := range newM {
		m, ok := merged[k]
		if !ok {
			m = &metric{}
			merged[k] = m
		}
		m.new, m.hasNew = v, true
	}
	paths := make([]string, 0, len(merged))
	for k := range merged {
		paths = append(paths, k)
	}
	sort.Strings(paths)

	var b strings.Builder
	regressions := 0
	var moved []traceDelta
	oldLabel := "old"
	if len(oldDocs) > 1 {
		oldLabel = fmt.Sprintf("old(mean/%d)", len(oldDocs))
	}
	fmt.Fprintf(&b, "%-34s %14s %14s %8s  %s\n", "metric", oldLabel, "new", "delta", "verdict")
	for _, p := range paths {
		m := merged[p]
		c := class(p)
		switch {
		case !m.hasNew:
			if c == "throughput" || c == "bytes" {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14s %8s  FAIL (metric dropped)\n", p, m.old, "-", "-")
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14s %8s  dropped (info)\n", p, m.old, "-", "-")
			}
			continue
		case !m.hasOld:
			fmt.Fprintf(&b, "%-34s %14s %14.6g %8s  new\n", p, "-", m.new, "-")
			continue
		}
		delta := 0.0
		if m.old != 0 {
			delta = (m.new - m.old) / m.old
		}
		switch c {
		case "bytes":
			if m.new > m.old {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  FAIL (frame grew; encoding is deterministic)\n", p, m.old, m.new, 100*delta)
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  ok (exact)\n", p, m.old, m.new, 100*delta)
			}
		case "throughput":
			tol, ok := tolerances[p]
			if !ok {
				tol = defaultTol
			}
			if m.new < m.old*(1-tol) {
				regressions++
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  FAIL (band -%.0f%%)\n", p, m.old, m.new, 100*delta, 100*tol)
			} else {
				fmt.Fprintf(&b, "%-34s %14.6g %14.6g %+7.1f%%  ok (band -%.0f%%)\n", p, m.old, m.new, 100*delta, 100*tol)
			}
		case "trace":
			// Shares diff in percentage points, not relative: a span going
			// 0.01 -> 0.02 of the run is a 1-point move, not a "100%
			// regression". Attribution informs the verdict, never is one.
			pp := (m.new - m.old) * 100
			fmt.Fprintf(&b, "%-34s %14.4f %14.4f %+6.1fpp  trace\n", p, m.old, m.new, pp)
			moved = append(moved, traceDelta{span: strings.TrimPrefix(p, "trace.self_share."), old: m.old, new: m.new})
		default:
			fmt.Fprintf(&b, "%-34s %14.6g %14.6g %8s  info\n", p, m.old, m.new, "-")
		}
	}
	if regressions > 0 && len(moved) > 0 {
		sort.Slice(moved, func(i, j int) bool {
			return math.Abs(moved[i].new-moved[i].old) > math.Abs(moved[j].new-moved[j].old)
		})
		fmt.Fprintf(&b, "top moved spans by self-time share (trace attribution):\n")
		for i, d := range moved {
			if i == 3 {
				break
			}
			fmt.Fprintf(&b, "  %-24s %+6.1fpp (%.3f -> %.3f)\n", d.span, (d.new-d.old)*100, d.old, d.new)
		}
	}
	return b.String(), regressions
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json (single; see -baseline for several)")
	var baselines multiFlag
	flag.Var(&baselines, "baseline", "baseline BENCH_*.json; repeatable, glob-expanded; the gate compares against the per-metric mean")
	newPath := flag.String("new", "", "candidate BENCH_*.json")
	tol := flag.Float64("tol", 0.30, "default relative regression band for throughput metrics without a per-metric entry")
	flag.Parse()
	patterns := append(multiFlag(nil), baselines...)
	if *oldPath != "" {
		patterns = append(patterns, *oldPath)
	}
	if len(patterns) == 0 || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: need -new and at least one of -old/-baseline")
		os.Exit(2)
	}
	var files []string
	for _, pat := range patterns {
		hits, err := filepath.Glob(pat)
		if err != nil || len(hits) == 0 {
			// Not a glob (or no match): treat as a literal path so a typo
			// fails loudly at ReadFile instead of silently shrinking the
			// baseline set.
			hits = []string{pat}
		}
		files = append(files, hits...)
	}
	sort.Strings(files)
	var oldDocs [][]byte
	for _, f := range files {
		doc, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcmp:", err)
			os.Exit(2)
		}
		oldDocs = append(oldDocs, doc)
	}
	newDoc, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	table, regressions := compareDocs(oldDocs, newDoc, *tol)
	fmt.Print(table)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond tolerance\n", regressions)
		os.Exit(1)
	}
	fmt.Println("benchcmp: within tolerance")
}
