// Command icegated is the scenario-serving gateway daemon: internal/
// icegate behind a TCP listener. It accepts scenario-run and experiment-
// table jobs over HTTP/JSON, executes them on the fleet runner, streams
// per-cell results as NDJSON, and memoizes finished tables in the
// deterministic result cache.
//
// Usage:
//
//	icegated [-addr host:port] [-workers N] [-executors N] [-queue N] [-maxcells N]
//
// -addr accepts ":0" to bind an ephemeral port; the chosen address is
// printed on the first line of output ("icegated: listening on ..."), so
// scripts can start the daemon on a random port and scrape the address.
// cmd/icerun -remote is the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/icegate"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8844", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", runtime.NumCPU(), "fleet worker pool width per job")
	executors := flag.Int("executors", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 16, "queued-job capacity before submissions get 429")
	maxCells := flag.Int("maxcells", 4096, "per-job cell ceiling (admission control)")
	flag.Parse()

	sched := icegate.NewScheduler(icegate.Config{
		QueueDepth: *queue,
		Executors:  *executors,
		Workers:    *workers,
		MaxCells:   *maxCells,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icegated: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("icegated: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: icegate.NewHandler(sched)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("icegated: %v, shutting down\n", s)
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "icegated: %v\n", err)
			sched.Close()
			os.Exit(1)
		}
	}

	// Stop the HTTP front end first, then drain the scheduler, so no
	// submission races the queue teardown.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	sched.Close()
}
