// Command icegated is the scenario-serving gateway daemon: internal/
// icegate behind a TCP listener. It accepts scenario-run and experiment-
// table jobs over HTTP/JSON, executes them on the fleet runner, streams
// per-cell results as NDJSON, and memoizes finished tables in the
// deterministic result cache.
//
// Usage:
//
//	icegated [-addr host:port] [-workers N] [-executors N] [-queue N] [-maxcells N]
//	         [-tenants file.json] [-store dir] [-store-bytes N]
//	         [-mesh host:port] [-shard-cells N] [-shard-window N]
//	         [-trace-sample N] [-pprof host:port] [-drain-timeout D]
//
// -addr accepts ":0" to bind an ephemeral port; the chosen address is
// printed on the first line of output ("icegated: listening on ..."), so
// scripts can start the daemon on a random port and scrape the address.
// cmd/icerun -remote is the matching client.
//
// -pprof starts a separate debug listener (net/http/pprof profiles at
// /debug/pprof/) kept off the API address so production traffic never
// shares a mux with the profiler. Gateway metrics stay at the API's
// /metrics endpoint.
//
// -mesh starts an icemesh coordinator on the given address (again ":0"
// works; the address is printed as "icegated: mesh coordinator on ...")
// and makes the cluster the job execution backend: cmd/icenode workers
// register there and submitted jobs fan out across them, byte-identical
// to local execution. Without -mesh, cells run in-process. -shard-cells
// and -shard-window tune the coordinator's streaming assignment (shard
// granularity and per-node in-flight credit).
//
// -tenants loads per-tenant quotas and fair-share weights from a JSON
// file (see icegate.TenantsConfig); without it every caller shares the
// anonymous tenant under unlimited quotas. Clients name their tenant via
// the X-Icegate-Tenant header or the request body's "tenant" field.
//
// -store points at a directory for the disk-backed result store: finished
// tables persist there keyed by the deterministic cache key, so cache
// hits survive daemon restarts byte-identical. -store-bytes caps the
// store's on-disk footprint (LRU eviction; 0 = unlimited).
//
// -trace-sample N force-enables span recording on every Nth submitted
// job, so a long-running daemon always has recent traces at
// /jobs/{id}/trace without clients opting in.
//
// On SIGTERM/SIGINT the daemon shuts down gracefully: the HTTP front
// end stops accepting, queued and running jobs drain within
// -drain-timeout, and the process exits 0; jobs still running at the
// deadline are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/icegate"
	"repro/internal/icemesh"
	"repro/internal/icescope"
	"repro/internal/icestore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8844", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", runtime.NumCPU(), "fleet worker pool width per job (local backend)")
	executors := flag.Int("executors", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 16, "queued-job capacity before submissions get 429")
	maxCells := flag.Int("maxcells", 4096, "per-job cell ceiling (admission control)")
	tenantsPath := flag.String("tenants", "", "JSON file with per-tenant quotas and weights (unset = single anonymous tenant)")
	storeDir := flag.String("store", "", "directory for the disk-backed result store (unset = memory cache only)")
	storeBytes := flag.Int64("store-bytes", 0, "disk-store byte budget, LRU-evicted (0 = unlimited)")
	mesh := flag.String("mesh", "", "mesh coordinator listen address; when set, jobs execute on registered icenode workers")
	shardCells := flag.Int("shard-cells", 0, "mesh shard granularity in cells (0 = coordinator default)")
	shardWindow := flag.Int("shard-window", 0, "mesh per-node in-flight shard window (0 = sized from node capacity)")
	traceSample := flag.Int("trace-sample", 0, "force-trace every Nth submitted job (0 = only on request)")
	pprofAddr := flag.String("pprof", "", "debug listen address for net/http/pprof profiles (off unless set)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for queued+running jobs on SIGTERM")
	flag.Parse()

	if *pprofAddr != "" {
		debugLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icegated: pprof listener: %v\n", err)
			os.Exit(1)
		}
		// Gateway metrics are already on the API mux (/metrics); the debug
		// listener carries only the profiler.
		go func() { _ = http.Serve(debugLn, icescope.DebugMux(nil)) }()
		defer debugLn.Close()
		fmt.Printf("icegated: pprof on %s\n", debugLn.Addr())
	}

	cfg := icegate.Config{
		QueueDepth:  *queue,
		Executors:   *executors,
		Workers:     *workers,
		MaxCells:    *maxCells,
		TraceSample: *traceSample,
	}

	if *tenantsPath != "" {
		tcfg, err := icegate.LoadTenants(*tenantsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icegated: %v\n", err)
			os.Exit(1)
		}
		cfg.Tenants = tcfg
		fmt.Printf("icegated: tenant config loaded from %s (%d named tenants)\n", *tenantsPath, len(tcfg.Tenants))
	}

	if *storeDir != "" {
		st, err := icestore.Open(icestore.Config{Dir: *storeDir, MaxBytes: *storeBytes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "icegated: result store: %v\n", err)
			os.Exit(1)
		}
		cfg.Store = st
		stat := st.Stats()
		fmt.Printf("icegated: result store at %s (%d entries, %d bytes recovered)\n", st.Dir(), stat.Entries, stat.Bytes)
	}

	var coord *icemesh.Coordinator
	if *mesh != "" {
		meshLn, err := net.Listen("tcp", *mesh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icegated: mesh listener: %v\n", err)
			os.Exit(1)
		}
		coord = icemesh.NewCoordinator(icemesh.Config{
			ShardCells: *shardCells,
			Window:     *shardWindow,
			Logf:       func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		})
		go func() { _ = coord.Serve(meshLn) }()
		defer meshLn.Close()
		cfg.Backend = coord
		fmt.Printf("icegated: mesh coordinator on %s\n", meshLn.Addr())
	}

	sched := icegate.NewScheduler(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icegated: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("icegated: listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: icegate.NewHandler(sched)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("icegated: %v, draining (timeout %v)\n", s, *drainTimeout)
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "icegated: %v\n", err)
			sched.Close()
			os.Exit(1)
		}
	}

	// Graceful order: stop the HTTP front end (no new submissions race
	// the teardown), drain queued and running jobs to completion within
	// the deadline, then release everything. Exit 0 either way — a blown
	// deadline cancelled the stragglers, it didn't corrupt anything.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := sched.Drain(ctx); err != nil {
		fmt.Printf("icegated: drain deadline, cancelled remaining jobs: %v\n", err)
	} else {
		fmt.Println("icegated: drained clean")
	}
	sched.Close()
	if coord != nil {
		coord.Close()
	}
}
