// Command alarmeval runs the alarm-quality experiments: smart-alarm
// layering (E3), EHR-personalized thresholds (E7) and mixed-criticality
// context suppression (E11).
//
// Usage:
//
//	alarmeval [-exp e3|e7|e11|all] [-seed N] [-patients N] [-hours H]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "which study: e3, e7, e11 or all")
	seed := flag.Int64("seed", 3, "simulation seed")
	patients := flag.Int("patients", 6, "ward size (e3/e7)")
	hours := flag.Float64("hours", 6, "observation length in virtual hours")
	flag.Parse()

	dur := sim.FromSeconds(*hours * 3600)
	want := strings.ToLower(*exp)
	run := func(id string, f func() (experiments.Table, error)) {
		if want != "all" && want != strings.ToLower(id) {
			return
		}
		tab, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "alarmeval: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tab)
		fmt.Println()
	}
	run("E3", func() (experiments.Table, error) {
		return experiments.E3SmartAlarms(experiments.E3Options{
			Seed: *seed, Patients: *patients, Duration: dur,
		})
	})
	run("E7", func() (experiments.Table, error) {
		return experiments.E7AdaptiveThresholds(experiments.E7Options{
			Seed: *seed, Athletes: *patients / 2, Average: *patients - *patients/2, Duration: dur,
		})
	})
	run("E11", func() (experiments.Table, error) {
		return experiments.E11MixedCriticality(experiments.E11Options{
			Seed: *seed, Duration: dur,
		})
	})
}
