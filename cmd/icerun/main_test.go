package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/icegate"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != 14 || all[0] != "F1" || all[13] != "A1" {
		t.Fatalf("all = %v, %v", all, err)
	}
	picked, err := selectExperiments(" e2, f1 ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(picked, ",") != "E2,F1" {
		t.Fatalf("picked = %v", picked)
	}
	if _, err := selectExperiments("E99"); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown ID not rejected: %v", err)
	}
}

// The golden-output smoke test: one small deterministic table, rendered
// through the full flag-handling path, byte-compared against the fixture.
func TestRunGoldenE12(t *testing.T) {
	golden, err := os.ReadFile("testdata/e12.golden")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "E12"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.String() != string(golden) {
		t.Fatalf("E12 output diverged from golden:\n%s\nwant:\n%s", out.String(), golden)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut.String(), "E99") || out.Len() != 0 {
		t.Fatalf("stderr %q stdout %q", errOut.String(), out.String())
	}
}

func TestUsageListsFleetScenarios(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"pca-supervised", "xray-ventsync", "F1,E2"} {
		if !strings.Contains(errOut.String(), want) {
			t.Fatalf("usage missing %q:\n%s", want, errOut.String())
		}
	}
}

// Client mode: the same table rendered through a live gateway must be
// byte-identical to the local run (and the second fetch exercises the
// gateway's cache).
func TestRunRemoteMatchesLocal(t *testing.T) {
	sched := icegate.NewScheduler(icegate.Config{QueueDepth: 4, Executors: 1, Workers: 2})
	ts := httptest.NewServer(icegate.NewHandler(sched))
	defer func() {
		ts.Close()
		sched.Close()
	}()

	var local, localErr bytes.Buffer
	if code := run([]string{"-exp", "E12"}, &local, &localErr); code != 0 {
		t.Fatalf("local run: %s", localErr.String())
	}
	for i := 0; i < 2; i++ { // second pass is a cache hit
		var remote, remoteErr bytes.Buffer
		if code := run([]string{"-exp", "E12", "-remote", ts.URL}, &remote, &remoteErr); code != 0 {
			t.Fatalf("remote run %d: %s", i, remoteErr.String())
		}
		if remote.String() != local.String() {
			t.Fatalf("remote render %d differs:\n%s\nvs local:\n%s", i, remote.String(), local.String())
		}
	}
	if hits, _, _ := sched.Cache().Stats(); hits != 1 {
		t.Fatalf("cache hits = %d", hits)
	}
}

// parseRetryAfter covers both HTTP shapes of the header plus the junk a
// client must shrug off.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"7", 7 * time.Second, true},
		{" 2 ", 2 * time.Second, true},
		{"0", 0, true},
		{now.Add(90 * time.Second).UTC().Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).UTC().Format(http.TimeFormat), 0, true}, // past date: retry now
		{"-3", 0, false},
		{"soon", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

// A 429 with Retry-After must pause for exactly the server's delay — not
// the generic jittered backoff — and the tenant flag must ride requests
// as the gateway's header.
func TestRemote429HonorsRetryAfter(t *testing.T) {
	var calls int
	var gotTenant string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		gotTenant = r.Header.Get(icegate.TenantHeader)
		if calls < 3 {
			w.Header().Set("Retry-After", strconv.Itoa(4+calls)) // 5, then 6
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}))
	defer srv.Close()

	var slept []time.Duration
	oldSleep := sleepFn
	sleepFn = func(d time.Duration) { slept = append(slept, d) }
	defer func() { sleepFn = oldSleep }()

	var out struct {
		OK bool `json:"ok"`
	}
	if _, err := remoteJSON(http.MethodGet, srv.URL, "sweeper", nil, &out); err != nil || !out.OK {
		t.Fatalf("remoteJSON = %v (ok=%v)", err, out.OK)
	}
	if calls != 3 || gotTenant != "sweeper" {
		t.Fatalf("calls=%d tenant=%q, want 3 calls as sweeper", calls, gotTenant)
	}
	// The exact parsed delays, not backoff jitter.
	if len(slept) != 2 || slept[0] != 5*time.Second || slept[1] != 6*time.Second {
		t.Fatalf("slept %v, want [5s 6s]", slept)
	}
}

// A 429 without the header falls back to the jittered backoff, attempts
// stay bounded, and a 4xx is permanent (no sleeps at all).
func TestRemoteRetryFallbackAndPermanent(t *testing.T) {
	var slept []time.Duration
	oldSleep := sleepFn
	sleepFn = func(d time.Duration) { slept = append(slept, d) }
	defer func() { sleepFn = oldSleep }()

	always429 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer always429.Close()
	if _, err := remoteJSON(http.MethodGet, always429.URL, "", nil, nil); err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("exhausted retries err = %v", err)
	}
	if len(slept) != remoteAttempts-1 {
		t.Fatalf("slept %d times, want %d", len(slept), remoteAttempts-1)
	}
	for _, d := range slept {
		if d <= 0 || d > remoteBackoff.Max {
			t.Fatalf("fallback delay %v outside backoff envelope", d)
		}
	}

	slept = nil
	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	if _, err := remoteJSON(http.MethodGet, notFound.URL, "", nil, nil); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("permanent err = %v", err)
	}
	if len(slept) != 0 {
		t.Fatalf("permanent failure slept %v, want none", slept)
	}
}

// -follow is narration, not computation: tables on stdout stay
// byte-identical with the live event stream on or off, locally and
// through a gateway — and the stream actually narrates span events to
// stderr in both modes.
func TestRunFollowByteIdentity(t *testing.T) {
	var plain, plainErr bytes.Buffer
	if code := run([]string{"-exp", "E12"}, &plain, &plainErr); code != 0 {
		t.Fatalf("local run: %s", plainErr.String())
	}
	var followed, followedErr bytes.Buffer
	if code := run([]string{"-exp", "E12", "-follow"}, &followed, &followedErr); code != 0 {
		t.Fatalf("local -follow run: %s", followedErr.String())
	}
	if followed.String() != plain.String() {
		t.Fatalf("-follow changed the local table:\n%s\nvs\n%s", followed.String(), plain.String())
	}
	if !strings.Contains(followedErr.String(), "follow:") {
		t.Fatalf("local -follow streamed nothing to stderr:\n%s", followedErr.String())
	}

	sched := icegate.NewScheduler(icegate.Config{QueueDepth: 4, Executors: 1, Workers: 2})
	ts := httptest.NewServer(icegate.NewHandler(sched))
	defer func() {
		ts.Close()
		sched.Close()
	}()
	for i := 0; i < 2; i++ { // second pass replays a cached traced job
		var remote, remoteErr bytes.Buffer
		if code := run([]string{"-exp", "E12", "-remote", ts.URL, "-follow"}, &remote, &remoteErr); code != 0 {
			t.Fatalf("remote -follow run %d: %s", i, remoteErr.String())
		}
		if remote.String() != plain.String() {
			t.Fatalf("remote -follow table %d differs:\n%s\nvs\n%s", i, remote.String(), plain.String())
		}
		if !strings.Contains(remoteErr.String(), "follow job-") {
			t.Fatalf("remote -follow run %d streamed nothing:\n%s", i, remoteErr.String())
		}
	}
}
