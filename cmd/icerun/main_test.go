package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/icegate"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("all")
	if err != nil || len(all) != 14 || all[0] != "F1" || all[13] != "A1" {
		t.Fatalf("all = %v, %v", all, err)
	}
	picked, err := selectExperiments(" e2, f1 ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(picked, ",") != "E2,F1" {
		t.Fatalf("picked = %v", picked)
	}
	if _, err := selectExperiments("E99"); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("unknown ID not rejected: %v", err)
	}
}

// The golden-output smoke test: one small deterministic table, rendered
// through the full flag-handling path, byte-compared against the fixture.
func TestRunGoldenE12(t *testing.T) {
	golden, err := os.ReadFile("testdata/e12.golden")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "E12"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if out.String() != string(golden) {
		t.Fatalf("E12 output diverged from golden:\n%s\nwant:\n%s", out.String(), golden)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(errOut.String(), "E99") || out.Len() != 0 {
		t.Fatalf("stderr %q stdout %q", errOut.String(), out.String())
	}
}

func TestUsageListsFleetScenarios(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"pca-supervised", "xray-ventsync", "F1,E2"} {
		if !strings.Contains(errOut.String(), want) {
			t.Fatalf("usage missing %q:\n%s", want, errOut.String())
		}
	}
}

// Client mode: the same table rendered through a live gateway must be
// byte-identical to the local run (and the second fetch exercises the
// gateway's cache).
func TestRunRemoteMatchesLocal(t *testing.T) {
	sched := icegate.NewScheduler(icegate.Config{QueueDepth: 4, Executors: 1, Workers: 2})
	ts := httptest.NewServer(icegate.NewHandler(sched))
	defer func() {
		ts.Close()
		sched.Close()
	}()

	var local, localErr bytes.Buffer
	if code := run([]string{"-exp", "E12"}, &local, &localErr); code != 0 {
		t.Fatalf("local run: %s", localErr.String())
	}
	for i := 0; i < 2; i++ { // second pass is a cache hit
		var remote, remoteErr bytes.Buffer
		if code := run([]string{"-exp", "E12", "-remote", ts.URL}, &remote, &remoteErr); code != 0 {
			t.Fatalf("remote run %d: %s", i, remoteErr.String())
		}
		if remote.String() != local.String() {
			t.Fatalf("remote render %d differs:\n%s\nvs local:\n%s", i, remote.String(), local.String())
		}
	}
	if hits, _, _ := sched.Cache().Stats(); hits != 1 {
		t.Fatalf("cache hits = %d", hits)
	}
}
