// Command icerun regenerates the experiment tables indexed in DESIGN.md
// (the benchmark harness in human-readable form).
//
// Usage:
//
//	icerun [-exp F1,E2,...|all] [-seed N] [-cells N] [-workers N] [-remote addr]
//
// -cells and -workers drive the fleet runner: F1 runs that many
// independent patient sessions per configuration, and the sweep-shaped
// experiments (E6, E7) spread their cells across the worker pool. With
// the defaults (1 cell, 1 worker) every table is bit-identical to the
// historical serial harness.
//
// -remote renders the same tables from a running icegated gateway
// instead of simulating locally: each experiment is submitted as a
// table job and the server's rendering is printed verbatim. The fleet's
// determinism contract makes remote and local output byte-identical
// (repeat submissions are served from the gateway's result cache).
// Worker-pool width is a server-side deployment knob, so -workers is
// ignored in remote mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icegate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main in testable form: flag handling, experiment selection, and
// table rendering against the injected writers. Returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icerun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "comma-separated experiment IDs (F1,E2,...,E12) or 'all'")
	seed := fs.Int64("seed", 1, "base simulation seed")
	cells := fs.Int("cells", 1, "trials per configuration for ensemble experiments (currently F1 only; sweep experiments run one cell per sweep point)")
	workers := fs.Int("workers", 1, "fleet worker pool width for parallel cell execution (F1, E6, E7); local mode only")
	remote := fs.String("remote", "", "icegated gateway address (host:port or URL); render tables from the server instead of running locally")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: icerun [flags]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "experiments: %s\n", strings.Join(experiments.IDs(), ","))
		fmt.Fprintf(stderr, "fleet scenarios (servable via icegated): %s\n", strings.Join(fleet.Names(), ","))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids, err := selectExperiments(*expFlag)
	if err != nil {
		fmt.Fprintf(stderr, "icerun: %v\n", err)
		return 2
	}

	opt := experiments.Options{Seed: *seed, Cells: *cells, Workers: *workers}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		var rendered string
		if *remote != "" {
			rendered, err = fetchRemoteTable(*remote, id, opt)
		} else {
			var tab experiments.Table
			tab, err = experiments.Run(id, opt)
			rendered = tab.String()
		}
		if err != nil {
			fmt.Fprintf(stderr, "icerun: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprint(stdout, rendered)
	}
	return 0
}

// selectExperiments resolves the -exp flag against the catalog: "all"
// expands to the canonical order, anything else is a comma-separated ID
// list validated (case-insensitively) against the catalog.
func selectExperiments(expFlag string) ([]string, error) {
	if expFlag == "all" {
		return experiments.IDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if !experiments.Has(id) {
			return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(experiments.IDs(), ","))
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// fetchRemoteTable submits one experiment-table job to an icegated
// gateway, waits for it, and returns the server-rendered table. The
// request and status shapes are icegate's own wire types, so client and
// server schemas stay coupled by the compiler.
func fetchRemoteTable(addr, id string, opt experiments.Options) (string, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	body, _ := json.Marshal(icegate.Request{Exp: id, Seed: opt.Seed, Cells: opt.Cells})
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return "", fmt.Errorf("gateway refused job (%s): %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var view icegate.View
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return "", err
	}

	// Poll until the job leaves the queue/runner, then fetch the table.
	for done := false; !done; {
		switch view.Status {
		case icegate.StatusDone:
			done = true
		case icegate.StatusFailed, icegate.StatusCancelled:
			return "", fmt.Errorf("remote job %s %s: %s", view.ID, view.Status, view.Error)
		default:
			time.Sleep(100 * time.Millisecond)
			r, err := http.Get(base + "/api/v1/jobs/" + view.ID)
			if err != nil {
				return "", err
			}
			if r.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(r.Body)
				r.Body.Close()
				return "", fmt.Errorf("remote job %s lost (%s): %s", view.ID, r.Status, strings.TrimSpace(string(msg)))
			}
			err = json.NewDecoder(r.Body).Decode(&view)
			r.Body.Close()
			if err != nil {
				return "", err
			}
		}
	}

	r, err := http.Get(base + "/api/v1/jobs/" + view.ID + "/result")
	if err != nil {
		return "", err
	}
	defer r.Body.Close()
	table, err := io.ReadAll(r.Body)
	if err != nil {
		return "", err
	}
	if r.StatusCode != http.StatusOK {
		return "", fmt.Errorf("gateway result (%s): %s", r.Status, table)
	}
	return string(table), nil
}
