// Command icerun regenerates the experiment tables indexed in DESIGN.md
// (the benchmark harness in human-readable form).
//
// Usage:
//
//	icerun [-exp F1,E2,...|all] [-seed N] [-cells N] [-workers N]
//
// -cells and -workers drive the fleet runner: F1 runs that many
// independent patient sessions per configuration, and the sweep-shaped
// experiments (E6, E7) spread their cells across the worker pool. With
// the defaults (1 cell, 1 worker) every table is bit-identical to the
// historical serial harness.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

type runner func(opt options) (experiments.Table, error)

// options carries the harness-wide knobs into each experiment runner.
type options struct {
	seed    int64
	cells   int
	workers int
}

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs (F1,E2,...,E12) or 'all'")
	seed := flag.Int64("seed", 1, "base simulation seed")
	cells := flag.Int("cells", 1, "trials per configuration for ensemble experiments (currently F1 only; sweep experiments run one cell per sweep point)")
	workers := flag.Int("workers", 1, "fleet worker pool width for parallel cell execution (F1, E6, E7)")
	flag.Parse()

	runners := map[string]runner{
		"F1": func(o options) (experiments.Table, error) {
			return experiments.F1PCAControlLoop(experiments.F1Options{
				Seed: o.seed, Trials: o.cells, Workers: o.workers,
			})
		},
		"E2": func(o options) (experiments.Table, error) {
			opt := experiments.DefaultE2()
			opt.Seed = o.seed
			return experiments.E2XrayVentSync(opt)
		},
		"E3": func(o options) (experiments.Table, error) {
			return experiments.E3SmartAlarms(experiments.E3Options{Seed: o.seed})
		},
		"E4": func(o options) (experiments.Table, error) {
			return experiments.E4SupervisoryControl(experiments.E4Options{Seed: o.seed})
		},
		"E5": func(options) (experiments.Table, error) { return experiments.E5WorkflowVerify() },
		"E6": func(o options) (experiments.Table, error) {
			opt := experiments.DefaultE6()
			opt.Seed = o.seed
			opt.Workers = o.workers
			return experiments.E6CommFailure(opt)
		},
		"E7": func(o options) (experiments.Table, error) {
			return experiments.E7AdaptiveThresholds(experiments.E7Options{
				Seed: o.seed, Workers: o.workers,
			})
		},
		"E8": func(options) (experiments.Table, error) { return experiments.E8IncrementalCert() },
		"E9": func(o options) (experiments.Table, error) {
			return experiments.E9Security(experiments.E9Options{Seed: o.seed})
		},
		"E10": func(o options) (experiments.Table, error) {
			return experiments.E10Telemetry(experiments.E10Options{Seed: o.seed})
		},
		"E11": func(o options) (experiments.Table, error) {
			return experiments.E11MixedCriticality(experiments.E11Options{Seed: o.seed})
		},
		"E12": func(options) (experiments.Table, error) { return experiments.E12TemporalInduction() },
		"E13": func(o options) (experiments.Table, error) {
			opt := experiments.DefaultE13()
			opt.Seed = o.seed
			return experiments.E13UserModel(opt)
		},
		"A1": func(o options) (experiments.Table, error) {
			opt := experiments.DefaultA1()
			opt.Seed = o.seed
			return experiments.A1SupervisorAblation(opt)
		},
	}
	order := []string{"F1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "A1"}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "icerun: unknown experiment %q (have %s)\n", id, strings.Join(order, ","))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	opt := options{seed: *seed, cells: *cells, workers: *workers}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		tab, err := runners[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icerun: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tab)
	}
}
