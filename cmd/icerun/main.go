// Command icerun regenerates the experiment tables of DESIGN.md /
// EXPERIMENTS.md (the benchmark harness in human-readable form).
//
// Usage:
//
//	icerun [-exp F1,E2,...|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

type runner func(seed int64) (experiments.Table, error)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment IDs (F1,E2,...,E12) or 'all'")
	seed := flag.Int64("seed", 1, "base simulation seed")
	flag.Parse()

	runners := map[string]runner{
		"F1": func(s int64) (experiments.Table, error) {
			return experiments.F1PCAControlLoop(experiments.F1Options{Seed: s})
		},
		"E2": func(s int64) (experiments.Table, error) {
			opt := experiments.DefaultE2()
			opt.Seed = s
			return experiments.E2XrayVentSync(opt)
		},
		"E3": func(s int64) (experiments.Table, error) {
			return experiments.E3SmartAlarms(experiments.E3Options{Seed: s})
		},
		"E4": func(s int64) (experiments.Table, error) {
			return experiments.E4SupervisoryControl(experiments.E4Options{Seed: s})
		},
		"E5": func(int64) (experiments.Table, error) { return experiments.E5WorkflowVerify() },
		"E6": func(s int64) (experiments.Table, error) {
			opt := experiments.DefaultE6()
			opt.Seed = s
			return experiments.E6CommFailure(opt)
		},
		"E7": func(s int64) (experiments.Table, error) {
			return experiments.E7AdaptiveThresholds(experiments.E7Options{Seed: s})
		},
		"E8": func(int64) (experiments.Table, error) { return experiments.E8IncrementalCert() },
		"E9": func(s int64) (experiments.Table, error) {
			return experiments.E9Security(experiments.E9Options{Seed: s})
		},
		"E10": func(s int64) (experiments.Table, error) {
			return experiments.E10Telemetry(experiments.E10Options{Seed: s})
		},
		"E11": func(s int64) (experiments.Table, error) {
			return experiments.E11MixedCriticality(experiments.E11Options{Seed: s})
		},
		"E12": func(int64) (experiments.Table, error) { return experiments.E12TemporalInduction() },
		"E13": func(s int64) (experiments.Table, error) {
			opt := experiments.DefaultE13()
			opt.Seed = s
			return experiments.E13UserModel(opt)
		},
		"A1": func(s int64) (experiments.Table, error) {
			opt := experiments.DefaultA1()
			opt.Seed = s
			return experiments.A1SupervisorAblation(opt)
		},
	}
	order := []string{"F1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "A1"}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "icerun: unknown experiment %q (have %s)\n", id, strings.Join(order, ","))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Println()
		}
		tab, err := runners[id](*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icerun: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(tab)
	}
}
