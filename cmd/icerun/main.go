// Command icerun regenerates the experiment tables indexed in DESIGN.md
// (the benchmark harness in human-readable form).
//
// Usage:
//
//	icerun [-exp F1,E2,...|all] [-seed N] [-cells N] [-workers N] [-remote addr]
//	       [-tenant name] [-tracefile path]
//
// -cells and -workers drive the fleet runner: F1 runs that many
// independent patient sessions per configuration, and the sweep-shaped
// experiments (E6, E7) spread their cells across the worker pool. With
// the defaults (1 cell, 1 worker) every table is bit-identical to the
// historical serial harness.
//
// -remote renders the same tables from a running icegated gateway
// instead of simulating locally: each experiment is submitted as a
// table job and the server's rendering is printed verbatim. The fleet's
// determinism contract makes remote and local output byte-identical
// (repeat submissions are served from the gateway's result cache).
// Worker-pool width is a server-side deployment knob, so -workers is
// ignored in remote mode.
//
// -tracefile records an icescope span trace of the run and writes it
// after the tables: one trace spanning every experiment locally, or the
// gateway's per-job traces in remote mode (jobs are submitted with
// "trace": true and the trace fetched from /jobs/{id}/trace). A .json
// suffix selects Chrome trace-event format — load it in Perfetto — and
// anything else the indented text tree. Tracing never changes the
// tables: results are byte-identical with it on or off.
//
// -follow streams the run's span events to stderr as they happen: in
// remote mode it consumes the gateway's live NDJSON events endpoint
// (/jobs/{id}/events), so a long mesh job narrates its shard and cell
// progress — including spans forwarded from worker nodes — while the
// table is still computing; locally it subscribes to the in-process
// trace. Tables on stdout stay byte-identical with -follow on or off.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/icegate"
	"repro/internal/icemesh"
	"repro/internal/icescope"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main in testable form: flag handling, experiment selection, and
// table rendering against the injected writers. Returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icerun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	expFlag := fs.String("exp", "all", "comma-separated experiment IDs (F1,E2,...,E12) or 'all'")
	seed := fs.Int64("seed", 1, "base simulation seed")
	cells := fs.Int("cells", 1, "trials per configuration for ensemble experiments (currently F1 only; sweep experiments run one cell per sweep point)")
	workers := fs.Int("workers", 1, "fleet worker pool width for parallel cell execution (F1, E6, E7); local mode only")
	remote := fs.String("remote", "", "icegated gateway address (host:port or URL); render tables from the server instead of running locally")
	tenant := fs.String("tenant", "", "tenant identity for -remote submissions (gateway quota accounting and fair scheduling); empty = the gateway's anonymous default")
	traceFile := fs.String("tracefile", "", "write an icescope trace of the run (.json = Chrome trace-event format, else text tree)")
	follow := fs.Bool("follow", false, "stream live span events to stderr while experiments run (remote mode follows the gateway's /events NDJSON stream)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: icerun [flags]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "experiments: %s\n", strings.Join(experiments.IDs(), ","))
		fmt.Fprintf(stderr, "fleet scenarios (servable via icegated): %s\n", strings.Join(fleet.Names(), ","))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ids, err := selectExperiments(*expFlag)
	if err != nil {
		fmt.Fprintf(stderr, "icerun: %v\n", err)
		return 2
	}

	chrome := strings.HasSuffix(*traceFile, ".json")
	if *traceFile != "" && *remote != "" && chrome && len(ids) > 1 {
		// Each remote job has its own trace; text trees concatenate, one
		// Chrome JSON document per file does not.
		fmt.Fprintln(stderr, "icerun: -tracefile *.json with -remote needs a single -exp (one job per Chrome trace)")
		return 2
	}

	// Local tracing hangs every experiment off one process-wide root span,
	// so a single file attributes the whole run. -follow piggybacks on the
	// same trace, so it arms one even without -tracefile.
	var tr *icescope.Trace
	var root icescope.Span
	var followDone chan struct{}
	opt := experiments.Options{Seed: *seed, Cells: *cells, Workers: *workers}
	if (*traceFile != "" || *follow) && *remote == "" {
		tr = icescope.NewTrace("icerun")
		if *follow {
			tr.StreamEvents(1 << 16)
		}
		root = tr.Start(icescope.Span{}, "icerun")
		opt.Trace = root
		if *follow {
			_, live, _ := tr.SubscribeEvents()
			followDone = make(chan struct{})
			go func() {
				defer close(followDone)
				for ev := range live {
					fmt.Fprintf(stderr, "follow: %s\n", fmtEvent(ev.Kind.String(), ev.Name,
						float64(ev.Start)/float64(time.Microsecond), float64(ev.End)/float64(time.Microsecond)))
				}
			}()
		}
	}

	var remoteTraces []string
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		var rendered string
		if *remote != "" {
			var trace string
			rendered, trace, err = fetchRemoteTable(*remote, id, opt, *tenant, *traceFile != "", chrome, *follow, stderr)
			if trace != "" {
				remoteTraces = append(remoteTraces, trace)
			}
		} else {
			var tab experiments.Table
			tab, err = experiments.Run(id, opt)
			rendered = tab.String()
		}
		if err != nil {
			fmt.Fprintf(stderr, "icerun: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprint(stdout, rendered)
	}

	if tr != nil {
		root.End()
		tr.CloseEvents()
		if followDone != nil {
			<-followDone
		}
	}
	if *traceFile != "" {
		if err := writeTraceFile(*traceFile, chrome, tr, remoteTraces); err != nil {
			fmt.Fprintf(stderr, "icerun: tracefile: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "icerun: trace written to %s\n", *traceFile)
	}
	return 0
}

// fmtEvent renders one span event for the -follow stream: offset from
// the trace epoch, the event kind, the span name, and (for ends) the
// span's duration.
func fmtEvent(kind, name string, startUS, endUS float64) string {
	if kind == "end" || (kind == "instant" && endUS > startUS) {
		return fmt.Sprintf("[%10.3fms] %-7s %s (%.3fms)", startUS/1000, kind, name, (endUS-startUS)/1000)
	}
	return fmt.Sprintf("[%10.3fms] %-7s %s", startUS/1000, kind, name)
}

// streamClient serves the -follow NDJSON stream: deliberately no
// timeout — the stream lives as long as the job runs.
var streamClient = &http.Client{}

// followRemote consumes one job's live events endpoint and renders each
// line to stderr until the terminal line (or stream error). Returns a
// channel closed when the stream ends, so the caller can let the
// narration finish before starting the next experiment's.
func followRemote(base, id, tenant string, stderr io.Writer) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequest(http.MethodGet, base+"/api/v1/jobs/"+id+"/events", nil)
		if err != nil {
			fmt.Fprintf(stderr, "icerun: follow %s: %v\n", id, err)
			return
		}
		if tenant != "" {
			req.Header.Set(icegate.TenantHeader, tenant)
		}
		resp, err := streamClient.Do(req)
		if err != nil {
			fmt.Fprintf(stderr, "icerun: follow %s: %v\n", id, err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fmt.Fprintf(stderr, "icerun: follow %s: %s: %s\n", id, resp.Status, strings.TrimSpace(string(body)))
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			var ev icegate.EventLine
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue
			}
			if ev.Done {
				fmt.Fprintf(stderr, "follow %s: %s (events dropped: %d)\n", id, ev.Status, ev.Dropped)
				return
			}
			fmt.Fprintf(stderr, "follow %s: %s\n", id, fmtEvent(ev.Kind, ev.Name, ev.StartUS, ev.EndUS))
		}
	}()
	return done
}

// writeTraceFile dumps either the local trace or the collected remote
// per-job traces to path in the format the extension picked.
func writeTraceFile(path string, chrome bool, tr *icescope.Trace, remoteTraces []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if tr != nil {
		if chrome {
			return tr.WriteChrome(f)
		}
		return tr.WriteText(f)
	}
	for i, t := range remoteTraces {
		if i > 0 && !chrome {
			if _, err := io.WriteString(f, "\n"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(f, t); err != nil {
			return err
		}
	}
	return nil
}

// selectExperiments resolves the -exp flag against the catalog: "all"
// expands to the canonical order, anything else is a comma-separated ID
// list validated (case-insensitively) against the catalog.
func selectExperiments(expFlag string) ([]string, error) {
	if expFlag == "all" {
		return experiments.IDs(), nil
	}
	var ids []string
	for _, id := range strings.Split(expFlag, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if !experiments.Has(id) {
			return nil, fmt.Errorf("unknown experiment %q (have %s)", id, strings.Join(experiments.IDs(), ","))
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// remoteClient is the one HTTP client every remote call shares, so the
// submission, the status polls, and the result fetch ride a reused
// keep-alive connection instead of the historical one-shot http.Get's.
var remoteClient = &http.Client{Timeout: 30 * time.Second}

// remoteBackoff is the retry policy for transient gateway failures: the
// mesh's shared exponential backoff + jitter, the same policy icenode
// uses to re-dial a restarted coordinator. It is the FALLBACK pause — a
// 429 carrying Retry-After uses the server's number instead, because the
// gateway computes it from the tenant's actual backlog.
var remoteBackoff = icemesh.Backoff{Base: 200 * time.Millisecond, Max: 3 * time.Second}

const remoteAttempts = 5

// sleepFn pauses between retry attempts; a variable so tests can pin the
// exact delays chosen without waiting them out.
var sleepFn = time.Sleep

// parseRetryAfter interprets a Retry-After header, which HTTP allows in
// two shapes: delay-seconds ("7") or an HTTP-date. Returns false when
// the header is absent or unparseable (callers fall back to backoff).
func parseRetryAfter(h string, now time.Time) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if when, err := http.ParseTime(h); err == nil {
		d := when.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// remoteJSON performs one request with retry on transport errors, 429s,
// and 5xx responses; anything else is the gateway's final answer and is
// returned without retrying. A 429's Retry-After header, when parseable,
// replaces the generic backoff delay — the server knows how long the
// tenant's quota will stay exhausted; guessing shorter just burns the
// remaining attempts. A nil out skips body decoding and returns the raw
// body instead. tenant, when non-empty, rides every request as the
// gateway's tenant header.
func remoteJSON(method, url, tenant string, reqBody []byte, out any) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < remoteAttempts; attempt++ {
		var body io.Reader
		if reqBody != nil {
			body = bytes.NewReader(reqBody)
		}
		req, err := http.NewRequest(method, url, body)
		if err != nil {
			return nil, err
		}
		if reqBody != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if tenant != "" {
			req.Header.Set(icegate.TenantHeader, tenant)
		}

		raw, retryIn, err := attemptRemote(req, attempt)
		if err == nil {
			if out != nil {
				if err := json.Unmarshal(raw, out); err != nil {
					return raw, err
				}
			}
			return raw, nil
		}
		lastErr = err
		if retryIn < 0 || attempt == remoteAttempts-1 {
			break // permanent, or out of attempts
		}
		sleepFn(retryIn)
	}
	return nil, lastErr
}

// attemptRemote executes one attempt and classifies the outcome: on
// failure, retryIn is the pause before the next try (the server's
// Retry-After on a 429 when present, the shared jittered backoff
// otherwise) or negative when the failure is permanent.
func attemptRemote(req *http.Request, attempt int) (raw []byte, retryIn time.Duration, err error) {
	resp, err := remoteClient.Do(req)
	if err != nil {
		return nil, remoteBackoff.Delay(attempt), err // transport error: retry
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, remoteBackoff.Delay(attempt), err
	}
	if resp.StatusCode < 300 {
		return data, 0, nil
	}
	err = fmt.Errorf("gateway %s (%s): %s", req.URL, resp.Status, strings.TrimSpace(string(data)))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			return nil, d, err
		}
		return nil, remoteBackoff.Delay(attempt), err
	case resp.StatusCode >= 500:
		return nil, remoteBackoff.Delay(attempt), err
	}
	return nil, -1, err // client error: the gateway's final answer
}

// fetchRemoteTable submits one experiment-table job to an icegated
// gateway, waits for it, and returns the server-rendered table. The
// request and status shapes are icegate's own wire types, so client and
// server schemas stay coupled by the compiler. Submissions are retried
// on transient failures — duplicates are harmless because the gateway's
// deterministic cache converges them on the same table.
//
// With wantTrace the job is submitted with "trace": true and the
// server-side span trace is fetched once the job is terminal (chrome
// picks the Perfetto-loadable JSON format over the text tree). follow
// additionally streams the job's live events to stderr while polling —
// it implies a traced submission, but not a trace fetch.
func fetchRemoteTable(addr, id string, opt experiments.Options, tenant string, wantTrace, chrome, follow bool, stderr io.Writer) (string, string, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	body, _ := json.Marshal(icegate.Request{Exp: id, Seed: opt.Seed, Cells: opt.Cells, Trace: wantTrace || follow})
	var view icegate.View
	if _, err := remoteJSON(http.MethodPost, base+"/api/v1/jobs", tenant, body, &view); err != nil {
		return "", "", err
	}
	if follow {
		// The stream closes itself at the job's terminal line; wait for it
		// so experiment narrations don't interleave.
		defer func(ch <-chan struct{}) { <-ch }(followRemote(base, view.ID, tenant, stderr))
	}

	// Poll until the job leaves the queue/runner, then fetch the table.
	for !view.Status.Terminal() {
		time.Sleep(100 * time.Millisecond)
		if _, err := remoteJSON(http.MethodGet, base+"/api/v1/jobs/"+view.ID, tenant, nil, &view); err != nil {
			return "", "", err
		}
	}
	if view.Status != icegate.StatusDone {
		return "", "", fmt.Errorf("remote job %s %s: %s", view.ID, view.Status, view.Error)
	}

	table, err := remoteJSON(http.MethodGet, base+"/api/v1/jobs/"+view.ID+"/result", tenant, nil, nil)
	if err != nil {
		return "", "", err
	}
	var trace []byte
	if wantTrace {
		url := base + "/api/v1/jobs/" + view.ID + "/trace"
		if chrome {
			url += "?format=chrome"
		}
		if trace, err = remoteJSON(http.MethodGet, url, tenant, nil, nil); err != nil {
			return "", "", err
		}
	}
	return string(table), string(trace), nil
}
