// Command wfcheck parses and verifies clinical workflows written in the
// workflow DSL: invariants over all reachable states, terminal-goal
// analysis, user-error fault injection, and temporal-induction proofs.
//
// Usage:
//
//	wfcheck -builtin xray_vent [-goal ventilated] [-omit step] [-skip step] [-induction]
//	wfcheck -file scenario.wf  [...]
//	wfcheck -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/verify"
	"repro/internal/workflow"
)

func main() {
	builtin := flag.String("builtin", "", "verify a built-in scenario by name")
	file := flag.String("file", "", "verify a workflow source file")
	goalVar := flag.String("goal", "", "boolean variable that must hold in every terminal state")
	omit := flag.String("omit", "", "inject an omission fault on this step")
	skip := flag.String("skip", "", "inject a skip-guard (out-of-order) fault on this step")
	induction := flag.Bool("induction", false, "also attempt a temporal-induction proof")
	list := flag.Bool("list", false, "list built-in scenarios")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for n := range workflow.Builtins() {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	var w *workflow.Workflow
	switch {
	case *builtin != "":
		var ok bool
		w, ok = workflow.Builtins()[*builtin]
		if !ok {
			fmt.Fprintf(os.Stderr, "wfcheck: no built-in %q (try -list)\n", *builtin)
			os.Exit(2)
		}
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfcheck:", err)
			os.Exit(1)
		}
		w, err = workflow.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfcheck:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "wfcheck: need -builtin or -file (see -list)")
		os.Exit(2)
	}

	a := workflow.Analysis{W: w}
	if *omit != "" {
		a.Faults = append(a.Faults, workflow.Fault{Kind: workflow.FaultOmit, Step: *omit})
	}
	if *skip != "" {
		a.Faults = append(a.Faults, workflow.Fault{Kind: workflow.FaultSkipGuard, Step: *skip})
	}
	var goal workflow.Expr
	if *goalVar != "" {
		goal = workflow.VarExpr{Name: *goalVar}
	}

	rep, err := a.CheckSafety(goal, verify.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("workflow %s: %d states, %d transitions\n", rep.Workflow, rep.States, rep.Transitions)
	if rep.Holds {
		fmt.Println("invariants: hold in every reachable state")
	} else {
		fmt.Printf("invariants VIOLATED: %v\n%s", rep.ViolatedLabels, rep.Counterexample)
	}
	if goal != nil {
		if rep.TerminalGoalHolds {
			fmt.Printf("terminal goal %q: holds\n", *goalVar)
		} else {
			fmt.Printf("terminal goal %q VIOLATED:\n%s", *goalVar, rep.TerminalGoalTrace)
		}
	} else if !rep.DeadlockFree {
		fmt.Printf("DEADLOCK before completion:\n%s", rep.DeadlockTrace)
	}

	if *induction {
		res, err := a.ProveByInduction(10)
		if err != nil {
			fmt.Printf("induction: %v\n", err)
		} else if res.Proved {
			fmt.Printf("induction: proved at k=%d (%d base states, %d step paths, universe %d)\n",
				res.K, res.BaseStates, res.StepPaths, res.UniverseSize)
		} else {
			fmt.Printf("induction: refuted at k=%d\n", res.K)
		}
	}
	if !rep.Holds || (goal != nil && !rep.TerminalGoalHolds) {
		os.Exit(1)
	}
}
