// Command icenode is a mesh worker daemon: it registers with an icemesh
// coordinator (an icegated started with -mesh), advertises its cell
// capacity, heartbeats, and executes assigned cell ranges on a local
// fleet pool, streaming each cell's result back as it completes.
//
// Usage:
//
//	icenode -coord host:port [-name N] [-workers N]
//
// The daemon re-dials with exponential backoff + jitter if the
// coordinator is down or restarts, so nodes and coordinator can be
// started in any order. On SIGTERM/SIGINT it drains gracefully: it
// announces the drain (the coordinator assigns nothing more), finishes
// queued and in-flight shards within -drain-timeout, and exits 0;
// anything unfinished at the deadline is abandoned to the coordinator's
// re-assignment.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/icemesh"
)

func main() {
	coord := flag.String("coord", "", "coordinator address (host:port), required")
	name := flag.String("name", "", "advertised node name (default: coordinator-assigned)")
	workers := flag.Int("workers", runtime.NumCPU(), "local fleet pool width (advertised capacity)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight shards on SIGTERM")
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "icenode: -coord is required")
		flag.Usage()
		os.Exit(2)
	}
	logf := log.New(os.Stdout, "", log.LstdFlags).Printf

	ctx, stop := context.WithCancel(context.Background())
	node := icemesh.NewNode(icemesh.NodeConfig{
		Coordinator: *coord,
		Name:        *name,
		Workers:     *workers,
		Logf:        logf,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("icenode: %v, draining (timeout %v)", s, *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := node.Drain(dctx); err != nil {
			logf("icenode: %v; abandoning in-flight work to re-assignment", err)
		} else {
			logf("icenode: drained clean")
		}
		stop() // closes the connection; Run returns nil for a draining node
	}()

	// Serve until signalled; a dropped connection (coordinator restart)
	// re-enters Run, which re-dials with the shared backoff policy.
	for {
		err := node.Run(ctx)
		if ctx.Err() != nil {
			logf("icenode: exiting")
			return // drained shutdown: exit 0
		}
		if err != nil {
			logf("icenode: connection lost: %v; re-dialing", err)
		}
	}
}
