// Command icenode is a mesh worker daemon: it registers with an icemesh
// coordinator (an icegated started with -mesh), advertises its cell
// capacity, heartbeats, and executes assigned cell ranges on a local
// fleet pool, streaming each cell's result back as it completes.
//
// Usage:
//
//	icenode -coord host:port [-name N] [-workers N] [-pprof host:port]
//	        [-tracefile path] [-drain-timeout D]
//
// The daemon re-dials with exponential backoff + jitter if the
// coordinator is down or restarts, so nodes and coordinator can be
// started in any order. On SIGTERM/SIGINT it drains gracefully: it
// announces the drain (the coordinator assigns nothing more), finishes
// queued and in-flight shards within -drain-timeout, and exits 0;
// anything unfinished at the deadline is abandoned to the coordinator's
// re-assignment.
//
// -pprof starts a debug listener serving net/http/pprof profiles plus
// the node's own /metrics (icenode_* counters and histograms in
// Prometheus text format). -tracefile records an icescope span trace of
// the whole process — dials, sessions, shards — and writes it on exit:
// a .json suffix selects Chrome trace-event format (load it in
// Perfetto), anything else the indented text tree.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/icemesh"
	"repro/internal/icescope"
)

func main() {
	coord := flag.String("coord", "", "coordinator address (host:port), required")
	name := flag.String("name", "", "advertised node name (default: coordinator-assigned)")
	workers := flag.Int("workers", runtime.NumCPU(), "local fleet pool width (advertised capacity)")
	pprofAddr := flag.String("pprof", "", "debug listen address for net/http/pprof profiles and node /metrics (off unless set)")
	traceFile := flag.String("tracefile", "", "write an icescope trace of this process on exit (.json = Chrome trace-event format, else text tree)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight shards on SIGTERM")
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "icenode: -coord is required")
		flag.Usage()
		os.Exit(2)
	}
	logf := log.New(os.Stdout, "", log.LstdFlags).Printf

	// One registry and one NodeObs for the whole process: the node re-uses
	// them across coordinator re-dials, so counters survive reconnects.
	reg := icescope.NewRegistry()
	obs := icemesh.NewNodeObs(reg)

	if *pprofAddr != "" {
		debugLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icenode: pprof listener: %v\n", err)
			os.Exit(1)
		}
		go func() { _ = http.Serve(debugLn, icescope.DebugMux(reg)) }()
		defer debugLn.Close()
		logf("icenode: pprof on %s", debugLn.Addr())
	}

	var tr *icescope.Trace
	if *traceFile != "" {
		tr = icescope.NewTrace("icenode")
		defer writeTrace(tr, *traceFile, logf)
	}

	ctx, stop := context.WithCancel(context.Background())
	node := icemesh.NewNode(icemesh.NodeConfig{
		Coordinator: *coord,
		Name:        *name,
		Workers:     *workers,
		Logf:        logf,
		Obs:         obs,
		Trace:       tr,
	})

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logf("icenode: %v, draining (timeout %v)", s, *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := node.Drain(dctx); err != nil {
			logf("icenode: %v; abandoning in-flight work to re-assignment", err)
		} else {
			logf("icenode: drained clean")
		}
		stop() // closes the connection; Run returns nil for a draining node
	}()

	// Serve until signalled; a dropped connection (coordinator restart)
	// re-enters Run, which re-dials with the shared backoff policy.
	for {
		err := node.Run(ctx)
		if ctx.Err() != nil {
			logf("icenode: exiting")
			return // drained shutdown: exit 0 (deferred trace write runs)
		}
		if err != nil {
			logf("icenode: connection lost: %v; re-dialing", err)
		}
	}
}

// writeTrace dumps the process trace to path on exit; the extension
// picks the format (.json → Chrome trace events, else text tree).
func writeTrace(tr *icescope.Trace, path string, logf func(string, ...any)) {
	f, err := os.Create(path)
	if err != nil {
		logf("icenode: tracefile: %v", err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = tr.WriteChrome(f)
	} else {
		err = tr.WriteText(f)
	}
	if err != nil {
		logf("icenode: tracefile: %v", err)
		return
	}
	logf("icenode: trace written to %s", path)
}
